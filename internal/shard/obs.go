// Telemetry hooks for the shard fabric: per-shard routed-call rates,
// handoff / promotion / mirror counters, balancer moves, and health
// probe outcomes. Per-shard series are cached in a sync.Map so the
// routing hot path pays one lock-free load, not a label-signature
// build; shard names are bounded by the fabric size, so cardinality
// stays far under the registry cap.

package shard

import (
	"sync"

	"github.com/ipa-grid/ipa/internal/merge"
	"github.com/ipa-grid/ipa/internal/obs"
)

var (
	obsHandoffs = obs.GetCounter("ipa_shard_handoffs_total",
		"Live-session migrations completed (ring edits + rebalance moves).")
	obsPromotions = obs.GetCounter("ipa_shard_promotions_total",
		"Replica promotions (epoch-fenced failovers) completed.")
	obsMirrored = obs.GetCounter("ipa_shard_mirrored_total",
		"Publishes successfully mirrored to a replica shard.")
	obsMoves = obs.GetCounter("ipa_shard_rebalance_moves_total",
		"Sessions moved by the load balancer.")
	obsProbeFails = obs.GetCounter("ipa_shard_probe_failures_total",
		"Health-probe failures (consecutive failures lead to a dead mark).")
	obsDeadMarks = obs.GetCounter("ipa_shard_dead_marks_total",
		"Shards declared unreachable by the health prober.")
	obsRevivals = obs.GetCounter("ipa_shard_revivals_total",
		"Dead marks lifted after a shard answered a probe again.")
)

// shardCalls caches the per-shard routed-call counters. Key is
// shard + "\x00" + kind.
var shardCalls sync.Map // string → *obs.Counter

func shardCall(shard, kind string) *obs.Counter {
	key := shard + "\x00" + kind
	if c, ok := shardCalls.Load(key); ok {
		return c.(*obs.Counter)
	}
	c := obs.GetCounter("ipa_shard_calls_total",
		"Calls routed to a shard, by shard and kind.", "shard", shard, "kind", kind)
	shardCalls.Store(key, c)
	return c
}

// Stats routes a stats probe to the session's owning shard — the
// status surface behind session.Status's traffic counters, and the
// trace-propagation observable (StatsReply.LastTraceID).
func (r *Router) Stats(args merge.StatsArgs, reply *merge.StatsReply) error {
	_, b, err := r.owner(args.SessionID, false)
	if err != nil {
		return err
	}
	return b.Stats(args, reply)
}

// ReplicaLag reports how many versions a session's replica trails its
// owner (0 when the session has no replica, either copy is unreachable,
// or the standby has caught up). One Stats probe per side; cheap enough
// for status surfaces, not meant for per-publish paths.
func (r *Router) ReplicaLag(sessionID string) int64 {
	t := r.table.Load()
	e, ok := t.Lookup(sessionID)
	if !ok || e.Replica == "" || e.Replica == e.Shard {
		return 0
	}
	ob, okO := t.Backend(e.Shard)
	rb, okR := t.Backend(e.Replica)
	if !okO || !okR {
		return 0
	}
	var owner, replica merge.StatsReply
	if err := ob.Stats(merge.StatsArgs{SessionID: sessionID}, &owner); err != nil || !owner.Found {
		return 0
	}
	if err := rb.Stats(merge.StatsArgs{SessionID: sessionID}, &replica); err != nil || !replica.Found {
		return 0
	}
	if lag := owner.Version - replica.Version; lag > 0 {
		return lag
	}
	return 0
}
