// Telemetry hooks for the shard fabric: per-shard routed-call rates,
// handoff / promotion / mirror counters, balancer moves, and health
// probe outcomes. Per-shard series are cached in a sync.Map so the
// routing hot path pays one lock-free load, not a label-signature
// build; shard names are bounded by the fabric size, so cardinality
// stays far under the registry cap.

package shard

import (
	"sync"

	"github.com/ipa-grid/ipa/internal/merge"
	"github.com/ipa-grid/ipa/internal/obs"
)

var (
	obsHandoffs = obs.GetCounter("ipa_shard_handoffs_total",
		"Live-session migrations completed (ring edits + rebalance moves).")
	obsPromotions = obs.GetCounter("ipa_shard_promotions_total",
		"Replica promotions (epoch-fenced failovers) completed.")
	obsMirrored = obs.GetCounter("ipa_shard_mirrored_total",
		"Publishes successfully mirrored to a replica shard.")
	obsMoves = obs.GetCounter("ipa_shard_rebalance_moves_total",
		"Sessions moved by the load balancer.")
	obsProbeFails = obs.GetCounter("ipa_shard_probe_failures_total",
		"Health-probe failures (consecutive failures lead to a dead mark).")
	obsDeadMarks = obs.GetCounter("ipa_shard_dead_marks_total",
		"Shards declared unreachable by the health prober.")
	obsRevivals = obs.GetCounter("ipa_shard_revivals_total",
		"Dead marks lifted after a shard answered a probe again.")
	obsMirrorBackpressure = obs.GetCounter("ipa_shard_mirror_backpressure_total",
		"Publishes that blocked because the mirror queue was full.")
	obsWALTails = obs.GetCounter("ipa_shard_wal_tail_replays_total",
		"Failovers that replayed a dead primary's WAL tail into the promoted copy.")
	obsAntiEntropyRounds = obs.GetCounter("ipa_shard_anti_entropy_rounds_total",
		"Anti-entropy sweeps completed over the session chains.")
	obsAntiEntropyRepairs = obs.GetCounter("ipa_shard_anti_entropy_repairs_total",
		"Replica copies re-baselined by the anti-entropy loop (drift or stall).")
	obsRelayPolls = obs.GetCounter("ipa_shard_relay_routed_polls_total",
		"Client polls routed to the relay tier instead of the owning shard.")
)

// shardCalls caches the per-shard routed-call counters. Key is
// shard + "\x00" + kind.
var shardCalls sync.Map // string → *obs.Counter

func shardCall(shard, kind string) *obs.Counter {
	key := shard + "\x00" + kind
	if c, ok := shardCalls.Load(key); ok {
		return c.(*obs.Counter)
	}
	c := obs.GetCounter("ipa_shard_calls_total",
		"Calls routed to a shard, by shard and kind.", "shard", shard, "kind", kind)
	shardCalls.Store(key, c)
	return c
}

// Stats routes a stats probe to the session's owning shard — the
// status surface behind session.Status's traffic counters, and the
// trace-propagation observable (StatsReply.LastTraceID).
func (r *Router) Stats(args merge.StatsArgs, reply *merge.StatsReply) error {
	_, b, err := r.owner(args.SessionID, false)
	if err != nil {
		return err
	}
	return b.Stats(args, reply)
}

// HopLag is one replica chain hop's view of a session, as probed by
// ReplicaLagChain: how far its copy trails the owner and the incarnation
// it believes in.
type HopLag struct {
	// Shard names the chain hop.
	Shard string `json:"shard"`
	// Lag is owner version minus hop version, floored at 0.
	Lag int64 `json:"lag"`
	// Epoch is the hop copy's incarnation stamp (0 when unreachable).
	Epoch int64 `json:"epoch,omitempty"`
	// Version is the hop copy's merged-result version (0 when
	// unreachable or empty).
	Version int64 `json:"version,omitempty"`
	// Stale marks a hop whose copy could not be probed, holds a foreign
	// epoch, or is ahead of the owner — the states anti-entropy repairs.
	Stale bool `json:"stale,omitempty"`
}

// ReplicaLagChain reports the per-hop lag breakdown for a session's
// whole replica chain, in chain order (nil when the session has no
// chain or the owner is unreachable). One Stats probe per copy; cheap
// enough for status surfaces, not meant for per-publish paths.
func (r *Router) ReplicaLagChain(sessionID string) []HopLag {
	t := r.table.Load()
	e, ok := t.Lookup(sessionID)
	if !ok || len(e.Replicas) == 0 {
		return nil
	}
	ob, okO := t.Backend(e.Shard)
	if !okO {
		return nil
	}
	var owner merge.StatsReply
	if err := ob.Stats(merge.StatsArgs{SessionID: sessionID}, &owner); err != nil || !owner.Found {
		return nil
	}
	out := make([]HopLag, 0, len(e.Replicas))
	for _, hop := range e.Replicas {
		h := HopLag{Shard: hop}
		hb, okR := t.Backend(hop)
		if !okR {
			h.Stale = true
			out = append(out, h)
			continue
		}
		var st merge.StatsReply
		if err := hb.Stats(merge.StatsArgs{SessionID: sessionID}, &st); err != nil || !st.Found {
			h.Stale = true
			out = append(out, h)
			continue
		}
		h.Epoch, h.Version = st.Epoch, st.Version
		if lag := owner.Version - st.Version; lag > 0 {
			h.Lag = lag
		}
		if st.Epoch != owner.Epoch || st.Version > owner.Version {
			h.Stale = true
		}
		out = append(out, h)
	}
	return out
}

// ReplicaLag reports how many versions a session's worst (deepest-lag)
// chain hop trails its owner (0 when the session has no replicas or
// every reachable copy has caught up). The per-hop breakdown is
// ReplicaLagChain.
func (r *Router) ReplicaLag(sessionID string) int64 {
	var worst int64
	for _, h := range r.ReplicaLagChain(sessionID) {
		if h.Lag > worst {
			worst = h.Lag
		}
	}
	return worst
}
