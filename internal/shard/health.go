package shard

import (
	"fmt"
	"sync"
	"time"

	"github.com/ipa-grid/ipa/internal/merge"
	"github.com/ipa-grid/ipa/internal/obs"
)

// Health is the shard fault prober: it calls every shard's lock-free
// Stats surface on a ticker and, after Threshold consecutive failures,
// marks the shard dead in the placement table — its sessions are
// evicted and re-home lazily on their next touch (the new owner answers
// their first delta with NeedFull, so the engines' full re-baseline
// rebuilds the state from their own trees; no durable store is
// involved). Direct-polling clients already treat endpoint failure as
// "re-resolve placement", so they follow automatically.
//
// A dead shard keeps being probed; a successful probe marks it alive
// again and it simply rejoins the routing pool (state it lost stays
// lost — the sessions that re-homed keep their new owners).
type Health struct {
	// Interval between probe rounds for Start (default 2s).
	Interval time.Duration
	// Threshold is the consecutive-failure count that declares a shard
	// dead (default 3) — hysteresis against one slow or dropped probe.
	Threshold int
	// ProbeTimeout bounds one probe's wait (default 2s). The RMI layer
	// has no call deadlines, so a shard that hangs without closing its
	// connection would otherwise wedge the prober — the exact failure a
	// health prober exists to catch. A probe that outlives the timeout
	// counts as a failure; its goroutine stays in flight (single-flight
	// per shard, never stacked) and is reaped whenever it finally
	// answers.
	ProbeTimeout time.Duration
	// OnDead, if set, is called after a shard is marked dead with the
	// sessions that were evicted (operator logging).
	OnDead func(shard string, evicted []string)
	// OnFailover, if set, is called after a shard is marked dead with
	// the sessions whose replicas were promoted in its place (only
	// non-empty when the router replicates).
	OnFailover func(shard string, promoted []string)

	router *Router

	mu       sync.Mutex
	fails    map[string]int
	inflight map[string]chan error
	stop     chan struct{}
}

// NewHealth creates a prober over the router's fabric (it does not
// probe until Start or RunOnce).
func NewHealth(r *Router) *Health {
	return &Health{router: r, fails: make(map[string]int), inflight: make(map[string]chan error)}
}

// errProbeHung marks a probe that exceeded ProbeTimeout.
var errProbeHung = fmt.Errorf("shard: health probe timed out")

// probe runs (or re-awaits) the shard's single-flight Stats call,
// waiting at most ProbeTimeout. Caller holds h.mu.
func (h *Health) probe(name string, be Backend) error {
	ch, ok := h.inflight[name]
	if !ok {
		ch = make(chan error, 1)
		h.inflight[name] = ch
		go func() {
			// Stats with an empty session ID is the cheapest liveness
			// probe: served from atomics on the manager, it only errors
			// when the shard (or the wire to it) is gone — or never
			// returns at all, which the timeout below converts into a
			// failure.
			var reply merge.StatsReply
			ch <- be.Stats(merge.StatsArgs{}, &reply)
		}()
	}
	timeout := h.ProbeTimeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case err := <-ch:
		delete(h.inflight, name)
		return err
	case <-timer.C:
		// Leave the call in flight: the next round re-awaits the same
		// probe instead of stacking another goroutine onto a hung shard.
		return errProbeHung
	}
}

// RunOnce probes every ring member once and returns the shards newly
// marked dead and newly revived this round.
func (h *Health) RunOnce() (died, revived []string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	threshold := h.Threshold
	if threshold <= 0 {
		threshold = 3
	}
	t := h.router.Table()
	for _, name := range t.Shards() {
		be, ok := t.Backend(name)
		if !ok {
			continue
		}
		err := h.probe(name, be)
		switch {
		case err == nil:
			h.fails[name] = 0
			if t.IsDead(name) && h.router.MarkAlive(name) {
				revived = append(revived, name)
				obsRevivals.Inc()
				obs.Emit(obs.EventRevival, name, "", 0, "probe answered, dead mark lifted")
			}
		case t.IsDead(name):
			// Still down; nothing new to record.
		default:
			h.fails[name]++
			obsProbeFails.Inc()
			if h.fails[name] < threshold {
				continue
			}
			h.fails[name] = 0
			obsDeadMarks.Inc()
			obs.Emit(obs.EventDeadMark, name, "", 0,
				fmt.Sprintf("%d consecutive probe failures", threshold))
			evicted, promoted := h.router.MarkDead(name)
			died = append(died, name)
			if h.OnDead != nil {
				h.OnDead(name, evicted)
			}
			if h.OnFailover != nil && len(promoted) > 0 {
				h.OnFailover(name, promoted)
			}
		}
	}
	// Drop bookkeeping for shards that left the fabric.
	for name := range h.fails {
		if !t.InRing(name) {
			delete(h.fails, name)
		}
	}
	for name := range h.inflight {
		if !t.InRing(name) {
			delete(h.inflight, name)
		}
	}
	return died, revived
}

// Start launches the probe ticker (no-op if already running).
func (h *Health) Start() {
	h.mu.Lock()
	if h.stop != nil {
		h.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	h.stop = stop
	h.mu.Unlock()
	interval := h.Interval
	if interval <= 0 {
		interval = 2 * time.Second
	}
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				h.RunOnce()
			}
		}
	}()
}

// Stop halts the probe ticker (no-op if not running).
func (h *Health) Stop() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.stop == nil {
		return
	}
	close(h.stop)
	h.stop = nil
}
