package shard

import (
	"testing"

	"github.com/ipa-grid/ipa/internal/aida"
	"github.com/ipa-grid/ipa/internal/merge"
	"github.com/ipa-grid/ipa/internal/obs"
)

// TestTracePropagatesThroughFailover is the end-to-end trace test: a
// span injected at engine publish must be observable — same trace ID —
// on the owning shard, on the mirror replica, and on the promoted copy
// after an epoch-fenced failover kills the owner.
func TestTracePropagatesThroughFailover(t *testing.T) {
	router, flaky, _ := newReplicatedFabric(t, 3)

	const victim = "shard00"
	sid := sessionsHomedOn(t, router, victim, 1, "trace")[0]

	tree := aida.NewTree()
	h, err := tree.H1D("/h", "x", "", 10, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.Fill(3)
	d, err := tree.FullDelta()
	if err != nil {
		t.Fatal(err)
	}
	tc := obs.NewTrace()
	if !tc.Valid() {
		t.Fatal("NewTrace returned an untraced context with recording enabled")
	}
	var rep merge.PublishReply
	if err := router.Publish(merge.PublishArgs{
		SessionID: sid, WorkerID: "w0", Seq: 1, Delta: d, Trace: tc,
	}, &rep); err != nil {
		t.Fatal(err)
	}
	router.drainMirrors()

	// Observed on the owning shard.
	var owner merge.StatsReply
	if err := router.Stats(merge.StatsArgs{SessionID: sid}, &owner); err != nil {
		t.Fatal(err)
	}
	if !owner.Found || owner.LastTraceID != tc.TraceID {
		t.Fatalf("owner LastTraceID = %x, want %x", owner.LastTraceID, tc.TraceID)
	}

	// Observed on the mirror replica (hop-advanced, same trace ID).
	replica := router.ReplicaOf(sid)
	if replica == "" {
		t.Fatal("no replica assigned despite Replicate=true")
	}
	var standby merge.StatsReply
	if err := flaky[replica].inner.Stats(merge.StatsArgs{SessionID: sid}, &standby); err != nil {
		t.Fatal(err)
	}
	if !standby.Found || standby.LastTraceID != tc.TraceID {
		t.Fatalf("replica LastTraceID = %x, want %x", standby.LastTraceID, tc.TraceID)
	}

	// The publish recorded a merge.apply span linked to the trace.
	var spanSeen bool
	for _, ev := range obs.Events.Since(0, 0) {
		if ev.Kind == obs.EventSpan && ev.TraceID == tc.TraceID {
			spanSeen = true
			break
		}
	}
	if !spanSeen {
		t.Errorf("no span event recorded for trace %x", tc.TraceID)
	}

	// Kill the owner: the replica is promoted under a bumped epoch, and
	// the recorded trace must survive the promotion.
	promoted := killAndFail(t, router, flaky, victim)
	if len(promoted) != 1 || promoted[0] != sid {
		t.Fatalf("promoted %v, want [%s]", promoted, sid)
	}
	if got := router.Placement(sid); got != replica {
		t.Fatalf("session re-homed to %s, want promoted replica %s", got, replica)
	}
	var after merge.StatsReply
	if err := router.Stats(merge.StatsArgs{SessionID: sid}, &after); err != nil {
		t.Fatal(err)
	}
	if !after.Found || after.LastTraceID != tc.TraceID {
		t.Fatalf("post-failover LastTraceID = %x, want %x", after.LastTraceID, tc.TraceID)
	}
	if after.Epoch <= owner.Epoch {
		t.Fatalf("promotion did not bump the epoch: %d → %d", owner.Epoch, after.Epoch)
	}

	// The failover itself landed in the event ring (promote + fence).
	var sawPromote bool
	for _, ev := range obs.Events.Since(0, 0) {
		if ev.Kind == obs.EventPromote && ev.Session == sid && ev.Shard == replica {
			sawPromote = true
		}
	}
	if !sawPromote {
		t.Errorf("no promote event recorded for session %s on %s", sid, replica)
	}
}
