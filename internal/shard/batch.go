// Batched publish routing: one coalesced PublishBatch fans out to the
// home shards of the sessions it carries. Items for the same session
// share a shard (and stay in order, so per-producer seq ordering
// survives batching); disjoint shards are scattered concurrently,
// which is where a batch on a multicore fabric beats the same
// publishes issued one call at a time.
package shard

import (
	"sync"

	"github.com/ipa-grid/ipa/internal/merge"
)

// PublishBatch routes each item to its session's home shard and applies
// per-shard sub-batches concurrently. Per-item failures (routing or
// publish) land in reply.Errs at the item's position; the call itself
// only fails on malformed input, mirroring Manager.PublishBatch.
func (r *Router) PublishBatch(args merge.PublishBatchArgs, reply *merge.PublishBatchReply) error {
	n := len(args.Items)
	reply.Replies = make([]merge.PublishReply, n)
	reply.Errs = make([]string, n)
	names := make([]string, n)
	type group struct {
		backend Backend
		idx     []int
	}
	groups := make(map[string]*group)
	var order []*group
	for i := range args.Items {
		name, b, err := r.owner(args.Items[i].SessionID, true)
		if err != nil {
			reply.Errs[i] = err.Error()
			continue
		}
		names[i] = name
		g := groups[name]
		if g == nil {
			g = &group{backend: b}
			groups[name] = g
			order = append(order, g)
		}
		g.idx = append(g.idx, i)
	}
	apply := func(g *group) {
		sub := merge.PublishBatchArgs{Items: make([]merge.PublishArgs, len(g.idx))}
		for k, i := range g.idx {
			sub.Items[k] = args.Items[i]
		}
		var sr merge.PublishBatchReply
		if err := g.backend.PublishBatch(sub, &sr); err != nil {
			for _, i := range g.idx {
				reply.Errs[i] = err.Error()
			}
			return
		}
		for k, i := range g.idx {
			switch {
			case k < len(sr.Errs) && sr.Errs[k] != "":
				reply.Errs[i] = sr.Errs[k]
			case k < len(sr.Replies):
				reply.Replies[i] = sr.Replies[k]
			}
		}
	}
	if len(order) == 1 {
		apply(order[0])
	} else {
		// Each group writes disjoint positions of the reply slices, so
		// the scatter needs no further coordination.
		var wg sync.WaitGroup
		for _, g := range order {
			wg.Add(1)
			go func(g *group) {
				defer wg.Done()
				apply(g)
			}(g)
		}
		wg.Wait()
	}
	if r.Replicate {
		for i := range args.Items {
			if reply.Errs[i] == "" && reply.Replies[i].Accepted {
				r.enqueueMirror(names[i], args.Items[i], &reply.Replies[i])
			}
		}
	}
	return nil
}

// PublishBatch ships the whole batch to the remote shard as one call.
func (r *Remote) PublishBatch(args merge.PublishBatchArgs, reply *merge.PublishBatchReply) error {
	return r.pub.PublishBatch(args, reply)
}
