package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"github.com/ipa-grid/ipa/internal/aida"
	"github.com/ipa-grid/ipa/internal/merge"
	"github.com/ipa-grid/ipa/internal/rmi"
)

// ---------------------------------------------------------------- ring

func TestRingOwnerDeterministicAndBalanced(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 8; i++ {
		r.Add(fmt.Sprintf("shard%02d", i))
	}
	counts := map[string]int{}
	const keys = 10000
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("session-%d", i)
		owner := r.Owner(k)
		if again := r.Owner(k); again != owner {
			t.Fatalf("owner of %s flapped: %s then %s", k, owner, again)
		}
		counts[owner]++
	}
	if len(counts) != 8 {
		t.Fatalf("only %d of 8 shards own keys: %v", len(counts), counts)
	}
	for s, n := range counts {
		frac := float64(n) / keys
		if frac < 0.04 || frac > 0.30 {
			t.Fatalf("shard %s owns %.1f%% of keys (counts %v)", s, 100*frac, counts)
		}
	}
}

func TestRingAddMovesBoundedFraction(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 8; i++ {
		r.Add(fmt.Sprintf("shard%02d", i))
	}
	const keys = 10000
	before := make([]string, keys)
	for i := range before {
		before[i] = r.Owner(fmt.Sprintf("session-%d", i))
	}
	r.Add("extra")
	moved, toExtra := 0, 0
	for i := range before {
		now := r.Owner(fmt.Sprintf("session-%d", i))
		if now != before[i] {
			moved++
			if now == "extra" {
				toExtra++
			}
		}
	}
	if moved == 0 {
		t.Fatal("adding a shard moved no keys")
	}
	if moved != toExtra {
		t.Fatalf("%d keys moved but only %d to the new shard (consistent hashing must not shuffle between old shards)", moved, toExtra)
	}
	if frac := float64(moved) / keys; frac > 0.30 {
		t.Fatalf("adding 1 of 9 shards moved %.1f%% of keys", 100*frac)
	}
}

// --------------------------------------------------------- test fabric

// poller is anything serving the Poll RPC (Manager, Router).
type poller interface {
	Poll(args merge.PollArgs, reply *merge.PollReply) error
}

// fullState polls the complete merged state of one session, keyed by path.
func fullState(t *testing.T, p poller, session string) map[string]aida.ObjectState {
	t.Helper()
	var reply merge.PollReply
	if err := p.Poll(merge.PollArgs{SessionID: session, Full: true}, &reply); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]aida.ObjectState, len(reply.Entries))
	for _, e := range reply.Entries {
		st, err := e.State()
		if err != nil {
			t.Fatal(err)
		}
		out[e.Path] = st
	}
	return out
}

func statePaths(m map[string]aida.ObjectState) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// testWorker drives one simulated engine against a Publisher, honoring
// NeedFull by immediately re-baselining, like the engine transport does.
type testWorker struct {
	session string
	id      string
	tree    *aida.Tree
	seq     int64
}

func (w *testWorker) publish(t *testing.T, to merge.Publisher, full bool) {
	t.Helper()
	var d *aida.DeltaState
	var err error
	if full {
		d, err = w.tree.FullDelta()
	} else {
		d, err = w.tree.Delta()
	}
	if err != nil {
		t.Fatal(err)
	}
	w.seq++
	var rep merge.PublishReply
	if err := to.Publish(merge.PublishArgs{
		SessionID: w.session, WorkerID: w.id, Seq: w.seq, Delta: d,
	}, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.NeedFull {
		w.publish(t, to, true)
	}
}

func newRouterWithShards(t *testing.T, n int) (*Router, map[string]*merge.Manager) {
	t.Helper()
	r := NewRouter(0)
	mgrs := make(map[string]*merge.Manager, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("shard%02d", i)
		m := merge.NewManager()
		mgrs[name] = m
		if err := r.AddShard(name, m); err != nil {
			t.Fatal(err)
		}
	}
	return r, mgrs
}

// ------------------------------------------- equivalence property test

// TestRouterMatchesSingleManager is the shard-equivalence property
// test: an 8-shard router must produce, for every session, merged trees
// identical to a single flat manager under randomized fills, removals,
// and rewinds — including across a live shard add and a live shard
// remove, whose handoffs migrate every affected session.
func TestRouterMatchesSingleManager(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			flat := merge.NewManager()
			router, _ := newRouterWithShards(t, 8)

			const nSessions = 6
			const workersPer = 2
			type twin struct{ sharded, flat *testWorker }
			var workers []twin
			var sessions []string
			for s := 0; s < nSessions; s++ {
				sid := fmt.Sprintf("sess-%d", s)
				sessions = append(sessions, sid)
				for w := 0; w < workersPer; w++ {
					id := fmt.Sprintf("w%d", w)
					workers = append(workers, twin{
						sharded: &testWorker{session: sid, id: id, tree: aida.NewTree()},
						flat:    &testWorker{session: sid, id: id, tree: aida.NewTree()},
					})
				}
			}
			paths := []string{"/h/mass", "/h/pt", "/a/b/mult"}
			fill := func(tw twin) {
				path := paths[rng.Intn(len(paths))]
				x := float64(rng.Intn(48))/4 - 1
				n := rng.Intn(12) + 1
				for _, w := range []*testWorker{tw.sharded, tw.flat} {
					obj := w.tree.Get(path)
					if obj == nil {
						h := aida.NewHistogram1D(path[strings.LastIndex(path, "/")+1:], "", 12, -1, 11)
						if err := w.tree.PutAt(path, h); err != nil {
							t.Fatal(err)
						}
						obj = h
					}
					for k := 0; k < n; k++ {
						obj.(*aida.Histogram1D).FillW(x, 0.5)
					}
				}
			}
			compareAll := func(step int) {
				t.Helper()
				for _, sid := range sessions {
					got, want := fullState(t, router, sid), fullState(t, flat, sid)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("step %d: session %s diverged from flat merge\n got: %v\nwant: %v",
							step, sid, statePaths(got), statePaths(want))
					}
				}
			}
			for step := 0; step < 240; step++ {
				tw := workers[rng.Intn(len(workers))]
				switch op := rng.Intn(12); {
				case op < 7:
					fill(tw)
					tw.sharded.publish(t, router, false)
					tw.flat.publish(t, flat, false)
				case op < 9: // accumulate without publishing
					fill(tw)
				case op == 9: // removal
					path := paths[rng.Intn(len(paths))]
					tw.sharded.tree.Rm(path)
					tw.flat.tree.Rm(path)
					tw.sharded.publish(t, router, false)
					tw.flat.publish(t, flat, false)
				default: // rewind: fresh tree, baseline next publish
					tw.sharded.tree = aida.NewTree()
					tw.flat.tree = aida.NewTree()
					fill(tw)
					tw.sharded.publish(t, router, false)
					tw.flat.publish(t, flat, false)
				}
				switch step {
				case 80:
					// Live shard add: sessions whose ring position moves are
					// handed off mid-run.
					if err := router.AddShard("extra", merge.NewManager()); err != nil {
						t.Fatal(err)
					}
					compareAll(step)
				case 160:
					// Live shard remove: everything it owns migrates out.
					if err := router.RemoveShard("shard03"); err != nil {
						t.Fatal(err)
					}
					compareAll(step)
				}
				if step%40 == 39 {
					compareAll(step)
				}
			}
			compareAll(-1)
		})
	}
}

// ---------------------------------------------------- handoff mechanics

// exportGate wraps a Manager and blocks inside Export (after the seal
// took effect) until released — a deterministic window for racing a
// publish against a live handoff.
type exportGate struct {
	*merge.Manager
	sealed   chan struct{} // closed when Export has sealed
	release  chan struct{} // test closes to let Export return
	armOnce  sync.Once
	disabled bool
}

func (g *exportGate) Export(args merge.ExportArgs, reply *merge.ExportReply) error {
	err := g.Manager.Export(args, reply)
	if !g.disabled {
		g.armOnce.Do(func() {
			close(g.sealed)
			<-g.release
		})
	}
	return err
}

// TestHandoffMidPublish drives a real snapshot transport against the
// router while a handoff is in flight. The publish that lands on the
// sealed old owner must draw NeedFull (not be lost), the transport must
// re-baseline exactly once, and the final merged state must match an
// unsharded reference bit for bit — no lost and no duplicated updates.
func TestHandoffMidPublish(t *testing.T) {
	const sid = "sess-handoff"
	router := NewRouter(0)
	mA, mB := merge.NewManager(), merge.NewManager()
	gate := &exportGate{Manager: mA, sealed: make(chan struct{}), release: make(chan struct{})}
	if err := router.AddShard("a", gate); err != nil {
		t.Fatal(err)
	}
	flat := merge.NewManager()

	tree := aida.NewTree()
	ref := aida.NewTree()
	h, _ := tree.H1D("/h", "mass", "", 10, 0, 10)
	rh, _ := ref.H1D("/h", "mass", "", 10, 0, 10)
	tr := merge.NewTransport(sid, "w0", router)
	refTr := merge.NewTransport(sid, "w0", flat)
	send := func(tp *merge.Transport, tw *aida.Tree) merge.PublishReply {
		t.Helper()
		rep, err := tp.Send(func(full bool) (merge.Snapshot, error) {
			var d *aida.DeltaState
			var err error
			if full {
				d, err = tw.FullDelta()
			} else {
				d, err = tw.Delta()
			}
			if err != nil {
				return merge.Snapshot{}, err
			}
			return merge.Snapshot{Delta: d, Log: ""}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	// Baseline publish lands on shard a.
	h.Fill(1)
	rh.Fill(1)
	send(tr, tree)
	send(refTr, ref)
	verBefore := router.Version(sid)
	var pre merge.PollReply
	if err := router.Poll(merge.PollArgs{SessionID: sid}, &pre); err != nil {
		t.Fatal(err)
	}

	// Kick off the handoff; it blocks inside Export with the seal on.
	done := make(chan error, 1)
	go func() {
		if err := router.AddShard("b", mB); err != nil {
			done <- err
			return
		}
		done <- router.RemoveShard("a")
	}()
	<-gate.sealed

	// Mid-handoff publish: routing still points at the sealed shard a.
	h.Fill(2)
	rh.Fill(2)
	rep := send(tr, tree)
	if rep.Accepted || !rep.NeedFull {
		t.Fatalf("publish against sealed shard = %+v, want refused with NeedFull", rep)
	}
	send(refTr, ref) // the reference accepts the same delta normally

	// Let the handoff finish, then re-baseline onto the new owner.
	gate.disabled = true
	close(gate.release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := router.Placement(sid); got != "b" {
		t.Fatalf("placement after handoff = %q, want b", got)
	}
	if n := router.Handoffs(); n != 1 {
		t.Fatalf("handoffs = %d, want 1", n)
	}
	// A client that was caught up before the handoff sees no spurious
	// refresh: the imported state carries the same version.
	var quiet merge.PollReply
	if err := router.Poll(merge.PollArgs{SessionID: sid, SinceVersion: verBefore}, &quiet); err != nil {
		t.Fatal(err)
	}
	if quiet.Changed {
		t.Fatalf("caught-up poll after handoff reported changes: %+v", quiet)
	}
	// The import carried the incarnation stamp: a handoff must not look
	// like a rebuild to polling clients.
	if quiet.Epoch != pre.Epoch {
		t.Fatalf("handoff changed the session epoch %d → %d (clients would spuriously full-resync)", pre.Epoch, quiet.Epoch)
	}

	h.Fill(3)
	rh.Fill(3)
	send(tr, tree)
	send(refTr, ref)
	if n := tr.Rebaselines(); n != 1 {
		t.Fatalf("transport rebaselines = %d, want exactly 1", n)
	}
	got, want := fullState(t, router, sid), fullState(t, flat, sid)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-handoff state diverged:\n got %v\nwant %v", got, want)
	}
	st := got["/h/mass"]
	live, err := st.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if n := live.(*aida.Histogram1D).Entries(); n != 3 {
		t.Fatalf("entries after handoff = %d, want 3 (lost or duplicated updates)", n)
	}
}

// TestConcurrentPublishersSurviveHandoffs hammers the router from many
// goroutines while shards join and leave, then checks every session
// converged to its reference state. Run under -race this also proves
// the locking story.
func TestConcurrentPublishersSurviveHandoffs(t *testing.T) {
	router, _ := newRouterWithShards(t, 2)
	flat := merge.NewManager()
	const nSessions = 4
	const rounds = 60

	var wg sync.WaitGroup
	for s := 0; s < nSessions; s++ {
		sid := fmt.Sprintf("sess-%d", s)
		wg.Add(1)
		go func() {
			defer wg.Done()
			tree := aida.NewTree()
			h, _ := tree.H1D("/h", "x", "", 10, 0, 10)
			tr := merge.NewTransport(sid, "w0", router)
			for i := 0; i < rounds; i++ {
				h.Fill(float64(i % 10))
				_, err := tr.Send(func(full bool) (merge.Snapshot, error) {
					var d *aida.DeltaState
					var err error
					if full {
						d, err = tree.FullDelta()
					} else {
						d, err = tree.Delta()
					}
					return merge.Snapshot{Delta: d}, err
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// Topology churn concurrent with the publishes.
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("churn%d", i)
		if err := router.AddShard(name, merge.NewManager()); err != nil {
			t.Fatal(err)
		}
	}
	if err := router.RemoveShard("churn1"); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	// Build the reference and compare: every fill must have survived the
	// churn exactly once.
	for s := 0; s < nSessions; s++ {
		sid := fmt.Sprintf("sess-%d", s)
		tree := aida.NewTree()
		h, _ := tree.H1D("/h", "x", "", 10, 0, 10)
		for i := 0; i < rounds; i++ {
			h.Fill(float64(i % 10))
		}
		d, err := tree.FullDelta()
		if err != nil {
			t.Fatal(err)
		}
		var rep merge.PublishReply
		if err := flat.Publish(merge.PublishArgs{SessionID: sid, WorkerID: "w0", Seq: 1, Delta: d}, &rep); err != nil {
			t.Fatal(err)
		}
		got, want := fullState(t, router, sid), fullState(t, flat, sid)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("session %s diverged after concurrent handoffs", sid)
		}
	}
}

// failImport refuses imports, to exercise the handoff rollback path.
type failImport struct {
	*merge.Manager
}

func (f *failImport) Import(args merge.ImportArgs, reply *merge.ImportReply) error {
	return errors.New("injected import failure")
}

func TestHandoffRollbackOnImportFailure(t *testing.T) {
	router := NewRouter(0)
	mA := merge.NewManager()
	if err := router.AddShard("a", mA); err != nil {
		t.Fatal(err)
	}
	w := &testWorker{session: "sess-rb", id: "w0", tree: aida.NewTree()}
	h, _ := w.tree.H1D("/h", "x", "", 10, 0, 10)
	h.Fill(1)
	w.publish(t, router, false)

	// Find a shard name the session would move to, and make it refuse.
	bad := &failImport{Manager: merge.NewManager()}
	name := ""
	for i := 0; ; i++ {
		name = fmt.Sprintf("cand%d", i)
		probe := NewRing(0)
		probe.Add("a")
		probe.Add(name)
		if probe.Owner("sess-rb") == name {
			break
		}
	}
	if err := router.AddShard(name, bad); err == nil {
		t.Fatal("AddShard with failing import did not report the handoff error")
	}
	// The session must still be served (unsealed) from its old shard.
	if got := router.Placement("sess-rb"); got != "a" {
		t.Fatalf("placement after failed handoff = %q, want a", got)
	}
	h.Fill(2)
	w.publish(t, router, false)
	st := fullState(t, router, "sess-rb")
	live, err := st["/h/x"].Restore()
	if err != nil {
		t.Fatal(err)
	}
	if n := live.(*aida.Histogram1D).Entries(); n != 2 {
		t.Fatalf("entries after rollback = %d, want 2", n)
	}
}

// ------------------------------------------------------- remote shards

// TestRemoteShardsOverRMI runs the fabric with both shards behind a
// real RMI server: publishes, polls, and a full handoff (export /
// import / drop) all cross the wire.
func TestRemoteShardsOverRMI(t *testing.T) {
	srv := rmi.NewServer(nil)
	m0, m1 := merge.NewManager(), merge.NewManager()
	if err := srv.Register(ObjectName("m0"), m0); err != nil {
		t.Fatal(err)
	}
	if err := srv.Register(ObjectName("m1"), m1); err != nil {
		t.Fatal(err)
	}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	dial := func() *rmi.Client {
		c, err := rmi.Dial(addr.String(), "token")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	router := NewRouter(0)
	if err := router.AddShard("m0", NewRemote(dial(), ObjectName("m0"))); err != nil {
		t.Fatal(err)
	}

	const sid = "sess-rmi"
	w := &testWorker{session: sid, id: "w0", tree: aida.NewTree()}
	h, _ := w.tree.H1D("/h", "x", "", 10, 0, 10)
	h.Fill(1)
	h.Fill(2)
	w.publish(t, router, false)

	if err := router.AddShard("m1", NewRemote(dial(), ObjectName("m1"))); err != nil {
		t.Fatal(err)
	}
	// Wherever the session landed, force it across the wire once.
	var moveTo *merge.Manager
	if router.Placement(sid) == "m0" {
		if err := router.RemoveShard("m0"); err != nil {
			t.Fatal(err)
		}
		moveTo = m1
	} else {
		if err := router.RemoveShard("m1"); err != nil {
			t.Fatal(err)
		}
		moveTo = m0
	}
	var sl merge.SessionsReply
	if err := moveTo.SessionList(merge.SessionsArgs{}, &sl); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sl.SessionIDs, []string{sid}) {
		t.Fatalf("surviving shard sessions = %v, want [%s]", sl.SessionIDs, sid)
	}
	// The drained shard's RMI registration is withdrawn; later calls to
	// it must fail fast rather than hit a zombie manager.
	gone := "m0"
	if moveTo == m0 {
		gone = "m1"
	}
	srv.Unregister(ObjectName(gone))
	var stats merge.StatsReply
	err = dial().Call(ObjectName(gone)+".Stats", merge.StatsArgs{SessionID: sid}, &stats)
	if err == nil || !strings.Contains(err.Error(), "no object") {
		t.Fatalf("call to unregistered shard = %v, want no-object error", err)
	}
	// Post-handoff delta continues the exported sequence without resync.
	h.Fill(3)
	w.publish(t, router, false)
	st := fullState(t, router, sid)
	live, err := st["/h/x"].Restore()
	if err != nil {
		t.Fatal(err)
	}
	if n := live.(*aida.Histogram1D).Entries(); n != 3 {
		t.Fatalf("entries after RMI handoff = %d, want 3", n)
	}
}

// TestConcurrentPublishPollHandoffRace is the publish×poll×handoff race
// test (run under -race): sessions publish and poll through the router
// while shards join and leave. Pollers assert that versions only ever
// regress to a tombstone's zero (the designed full-refresh reset for
// straggler polls mid-flip), never to an intermediate value, and the
// final merged state matches a flat reference manager.
func TestConcurrentPublishPollHandoffRace(t *testing.T) {
	router, _ := newRouterWithShards(t, 2)
	flat := merge.NewManager()
	const nSessions = 4
	const rounds = 50

	var pubWG sync.WaitGroup
	for s := 0; s < nSessions; s++ {
		sid := fmt.Sprintf("sess-%d", s)
		pubWG.Add(1)
		go func() {
			defer pubWG.Done()
			tree := aida.NewTree()
			h, _ := tree.H1D("/h", "x", "", 10, 0, 10)
			tr := merge.NewTransport(sid, "w0", router)
			for i := 0; i < rounds; i++ {
				h.Fill(float64(i % 10))
				_, err := tr.Send(func(full bool) (merge.Snapshot, error) {
					var d *aida.DeltaState
					var err error
					if full {
						d, err = tree.FullDelta()
					} else {
						d, err = tree.Delta()
					}
					return merge.Snapshot{Delta: d}, err
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	stop := make(chan struct{})
	var pollWG sync.WaitGroup
	for s := 0; s < nSessions; s++ {
		sid := fmt.Sprintf("sess-%d", s)
		pollWG.Add(1)
		go func() {
			defer pollWG.Done()
			var since int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				var reply merge.PollReply
				if err := router.Poll(merge.PollArgs{SessionID: sid, SinceVersion: since}, &reply); err != nil {
					t.Error(err)
					return
				}
				if reply.Version < since && reply.Version != 0 {
					t.Errorf("poll version regressed %d → %d (not a tombstone reset)", since, reply.Version)
					return
				}
				for _, e := range reply.Entries {
					if _, err := e.State(); err != nil {
						t.Errorf("undecodable entry %s mid-handoff: %v", e.Path, err)
						return
					}
				}
				since = reply.Version
			}
		}()
	}
	// Topology churn concurrent with both traffic kinds.
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("churn%d", i)
		if err := router.AddShard(name, merge.NewManager()); err != nil {
			t.Fatal(err)
		}
	}
	if err := router.RemoveShard("churn1"); err != nil {
		t.Fatal(err)
	}
	if err := router.RemoveShard("churn2"); err != nil {
		t.Fatal(err)
	}
	pubWG.Wait()
	close(stop)
	pollWG.Wait()
	if t.Failed() {
		return
	}

	for s := 0; s < nSessions; s++ {
		sid := fmt.Sprintf("sess-%d", s)
		tree := aida.NewTree()
		h, _ := tree.H1D("/h", "x", "", 10, 0, 10)
		for i := 0; i < rounds; i++ {
			h.Fill(float64(i % 10))
		}
		d, err := tree.FullDelta()
		if err != nil {
			t.Fatal(err)
		}
		var rep merge.PublishReply
		if err := flat.Publish(merge.PublishArgs{SessionID: sid, WorkerID: "w0", Seq: 1, Delta: d}, &rep); err != nil {
			t.Fatal(err)
		}
		got, want := fullState(t, router, sid), fullState(t, flat, sid)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("session %s diverged under concurrent publish/poll/handoff", sid)
		}
	}
}

// TestPlacementInfoAddrs: the router reports each session's owning
// shard together with its advertised RMI endpoint, before and after a
// handoff.
func TestPlacementInfoAddrs(t *testing.T) {
	router, _ := newRouterWithShards(t, 2)
	router.SetShardAddr("shard00", "10.0.0.1:7000")
	router.SetShardAddr("shard01", "10.0.0.2:7000")
	w := &testWorker{session: "sess-a", id: "w0", tree: aida.NewTree()}
	w.tree.H1D("/h", "x", "", 10, 0, 10)
	w.publish(t, router, true)

	shard, addr := router.PlacementInfo("sess-a")
	if shard != router.Placement("sess-a") {
		t.Fatalf("PlacementInfo shard %q != Placement %q", shard, router.Placement("sess-a"))
	}
	want := map[string]string{"shard00": "10.0.0.1:7000", "shard01": "10.0.0.2:7000"}
	if addr != want[shard] {
		t.Fatalf("shard %s addr = %q, want %q", shard, addr, want[shard])
	}
	// An unadvertised shard reports an empty addr.
	router.SetShardAddr(shard, "")
	if _, addr := router.PlacementInfo("sess-a"); addr != "" {
		t.Fatalf("cleared shard addr still reports %q", addr)
	}
}
