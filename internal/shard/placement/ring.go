package placement

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// defaultVnodes is the virtual-node count per shard. 64 points per
// shard keeps the expected load imbalance across shards in the few-
// percent range without making ring edits noticeable.
const defaultVnodes = 64

type ringPoint struct {
	hash  uint64
	shard string
}

// Ring is a consistent-hash ring with virtual nodes mapping session IDs
// to shard names. Adding or removing one shard moves only ~1/N of the
// key space. A Ring held by a published Table is immutable — writers
// Clone before editing, which is what makes lock-free Owner lookups
// safe.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by hash
	shards map[string]struct{}
}

// NewRing creates an empty ring (vnodes <= 0 selects the default).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	return &Ring{vnodes: vnodes, shards: make(map[string]struct{})}
}

// Clone returns an independently editable copy.
func (r *Ring) Clone() *Ring {
	cp := &Ring{
		vnodes: r.vnodes,
		points: append([]ringPoint(nil), r.points...),
		shards: make(map[string]struct{}, len(r.shards)),
	}
	for s := range r.shards {
		cp.shards[s] = struct{}{}
	}
	return cp
}

func hashKey(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	// FNV avalanches poorly on short, similar keys (shard names differ in
	// one digit), which skews vnode spacing badly; a splitmix64 finalizer
	// decorrelates the ring positions.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add inserts a shard's virtual nodes (no-op if already present).
func (r *Ring) Add(shard string) {
	if _, ok := r.shards[shard]; ok {
		return
	}
	r.shards[shard] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: hashKey(shard, strconv.Itoa(i)), shard: shard})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a shard's virtual nodes (no-op if absent).
func (r *Ring) Remove(shard string) {
	if _, ok := r.shards[shard]; !ok {
		return
	}
	delete(r.shards, shard)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.shard != shard {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Owner maps a session ID to its home shard ("" on an empty ring): the
// first virtual node at or after the key's hash, wrapping around.
func (r *Ring) Owner(sessionID string) string {
	return r.OwnerFunc(sessionID, nil)
}

// OwnerFunc is Owner restricted to shards accepted by ok (nil accepts
// all): the first acceptable virtual node at or after the key's hash,
// wrapping. Successor semantics keep fault re-homing consistent —
// every key of a dead shard lands on the same successors a ring-remove
// would pick, so a later real removal moves nothing twice.
func (r *Ring) OwnerFunc(sessionID string, ok func(shard string) bool) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hashKey(sessionID)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for n := 0; n < len(r.points); n++ {
		p := r.points[(i+n)%len(r.points)]
		if ok == nil || ok(p.shard) {
			return p.shard
		}
	}
	return ""
}

// Has reports ring membership.
func (r *Ring) Has(shard string) bool {
	_, ok := r.shards[shard]
	return ok
}

// Shards lists the member shard names, sorted.
func (r *Ring) Shards() []string {
	out := make([]string, 0, len(r.shards))
	for s := range r.shards {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Size reports the member count.
func (r *Ring) Size() int { return len(r.shards) }
