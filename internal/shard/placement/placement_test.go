package placement

import (
	"fmt"
	"sync"
	"testing"
)

func TestStoreRCUSemantics(t *testing.T) {
	s := NewStore[int](8)
	t0 := s.Load()
	if t0.Gen() != 0 {
		t.Fatalf("fresh table gen = %d, want 0", t0.Gen())
	}
	t1 := s.Update(func(m *Table[int]) bool {
		m.AddShard("a", 1)
		m.Place("sess", "a", false)
		return true
	})
	if t1.Gen() != 1 {
		t.Fatalf("after edit gen = %d, want 1", t1.Gen())
	}
	// The old snapshot is immutable: readers holding it see nothing.
	if _, ok := t0.Lookup("sess"); ok {
		t.Fatal("edit leaked into a previously loaded table")
	}
	if _, ok := t1.Lookup("sess"); !ok {
		t.Fatal("published table missing the placement")
	}
	// A recognized no-op publishes nothing and burns no generation.
	t2 := s.Update(func(m *Table[int]) bool { return false })
	if t2 != t1 {
		t.Fatal("no-op edit swapped the table")
	}
	if s.Load().Gen() != 1 {
		t.Fatalf("no-op edit bumped gen to %d", s.Load().Gen())
	}
}

func TestHomeSkipsDeadShards(t *testing.T) {
	s := NewStore[int](0)
	s.Update(func(m *Table[int]) bool {
		for i := 0; i < 4; i++ {
			m.AddShard(fmt.Sprintf("shard%02d", i), i)
		}
		return true
	})
	tb := s.Load()
	// Find a session homed on shard00, then kill shard00: the session
	// must re-home deterministically onto a live shard — and onto the
	// same successor a real ring-remove would pick.
	sid := ""
	for i := 0; ; i++ {
		sid = fmt.Sprintf("sess-%d", i)
		if tb.Home(sid) == "shard00" {
			break
		}
	}
	dead := s.Update(func(m *Table[int]) bool {
		m.SetDead("shard00", true)
		return true
	})
	rehomed := dead.Home(sid)
	if rehomed == "" || rehomed == "shard00" {
		t.Fatalf("dead-shard home = %q, want a live shard", rehomed)
	}
	removed := s.Update(func(m *Table[int]) bool {
		m.SetDead("shard00", false)
		m.DropShard("shard00")
		return true
	})
	if got := removed.Home(sid); got != rehomed {
		t.Fatalf("ring-remove home %q != dead-skip home %q (fault and removal must agree)", got, rehomed)
	}
	// Everything dead → no home.
	allDead := s.Update(func(m *Table[int]) bool {
		for _, name := range m.Shards() {
			m.SetDead(name, true)
		}
		return true
	})
	if got := allDead.Home(sid); got != "" {
		t.Fatalf("all-dead home = %q, want empty", got)
	}
}

func TestDropShardClearsAddr(t *testing.T) {
	s := NewStore[int](0)
	tb := s.Update(func(m *Table[int]) bool {
		m.AddShard("a", 1)
		m.SetAddr("a", "10.0.0.1:7000")
		return true
	})
	if tb.Addr("a") != "10.0.0.1:7000" {
		t.Fatalf("addr = %q", tb.Addr("a"))
	}
	tb = s.Update(func(m *Table[int]) bool {
		m.DropShard("a")
		return true
	})
	if got := tb.Addr("a"); got != "" {
		t.Fatalf("departed shard still advertises %q", got)
	}
	// Re-adding the shard must not resurrect the old endpoint.
	tb = s.Update(func(m *Table[int]) bool {
		m.AddShard("a", 2)
		return true
	})
	if got := tb.Addr("a"); got != "" {
		t.Fatalf("re-added shard inherited stale addr %q", got)
	}
}

// TestConcurrentLoadsDuringUpdates is the -race smoke for the RCU
// contract: readers hammer Load while writers churn placements.
func TestConcurrentLoadsDuringUpdates(t *testing.T) {
	s := NewStore[int](8)
	s.Update(func(m *Table[int]) bool {
		m.AddShard("a", 1)
		m.AddShard("b", 2)
		return true
	})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tb := s.Load()
				for i := 0; i < 16; i++ {
					sid := fmt.Sprintf("sess-%d", i)
					if e, ok := tb.Lookup(sid); ok {
						if _, ok := tb.Backend(e.Shard); !ok {
							t.Errorf("placed session %s on unknown shard %q", sid, e.Shard)
							return
						}
					} else if tb.Home(sid) == "" {
						t.Errorf("no home for %s on a live fabric", sid)
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 400; i++ {
		sid := fmt.Sprintf("sess-%d", i%16)
		shard := "a"
		if i%2 == 1 {
			shard = "b"
		}
		s.Update(func(m *Table[int]) bool {
			m.Place(sid, shard, i%3 == 0)
			return true
		})
		if i%50 == 49 {
			s.Update(func(m *Table[int]) bool {
				m.Evict(sid)
				return true
			})
		}
	}
	close(stop)
	wg.Wait()
}
