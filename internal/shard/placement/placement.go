// Package placement is the shard fabric's routing brain, extracted
// from the Router so placement is a first-class subsystem rather than a
// field under a mutex. One immutable Table holds everything a call
// needs to find its shard — session placements, the consistent-hash
// ring, shard backends, advertised endpoints, and fault marks — and a
// Store swaps whole tables through one atomic.Pointer, RCU-style:
//
//   - Readers (every Publish/Poll/Reset resolution) Load the current
//     table and walk plain maps with zero locks and zero retries; a
//     concurrent topology edit is simply not observed until its swap.
//   - Writers (shard add/remove, first-touch placement, rebalance
//     flips, fault evictions) clone the table under the store mutex,
//     edit the clone, and publish it with a generation bump.
//
// This removes the fabric's last global serialization point: after the
// managers went per-session concurrent, the Router's single mutex was
// the one lock every call still funneled through.
package placement

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Entry is one session's placement.
type Entry struct {
	// Shard names the session's current owner.
	Shard string
	// Pinned marks a placement made by the load balancer rather than
	// ring position: ring edits leave it alone (only losing its shard
	// re-homes it), so a deliberate hot-session move is not silently
	// undone by the next topology change.
	Pinned bool
	// Replicas names the shards holding the session's standby copies in
	// chain order: the mirror stream visits Replicas[0] first, then
	// Replicas[1], and so on (nil = none assigned). Never contains
	// Shard, never holds duplicates. The slice is shared across table
	// clones and must be treated as immutable — mutators always install
	// a freshly built slice, never append in place.
	Replicas []string
}

// Replica is the first chain hop ("" when the chain is empty) — the
// single-standby view kept for callers that predate depth-K chains.
func (e Entry) Replica() string {
	if len(e.Replicas) == 0 {
		return ""
	}
	return e.Replicas[0]
}

// HasReplica reports whether a shard appears anywhere in the chain.
func (e Entry) HasReplica(shard string) bool {
	for _, r := range e.Replicas {
		if r == shard {
			return true
		}
	}
	return false
}

// sanitizeChain copies a proposed chain, dropping the owner, dead or
// empty names, and duplicates — the invariants every stored chain keeps.
func sanitizeChain(chain []string, owner string) []string {
	if len(chain) == 0 {
		return nil
	}
	out := make([]string, 0, len(chain))
	for _, s := range chain {
		if s == "" || s == owner {
			continue
		}
		dup := false
		for _, seen := range out {
			if seen == s {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Table is one immutable placement snapshot, parameterized by the
// backend handle type (the Router instantiates it with its Backend
// interface). Readers obtained it from Store.Load and must not mutate
// it; the mutators below are for the cloned table inside Store.Update
// only.
type Table[B any] struct {
	gen      uint64
	ring     *Ring
	sessions map[string]Entry
	backends map[string]B
	addrs    map[string]string
	dead     map[string]struct{}
	// relays maps relay name → advertised endpoint ("" for in-process
	// relays). Relays are the read fan-out tier: they never own
	// sessions, so they live beside the shard ring, with their own
	// consistent-hash ring assigning each session a home relay.
	relays    map[string]string
	relayRing *Ring
}

func newTable[B any](vnodes int) *Table[B] {
	return &Table[B]{
		ring:      NewRing(vnodes),
		sessions:  make(map[string]Entry),
		backends:  make(map[string]B),
		addrs:     make(map[string]string),
		dead:      make(map[string]struct{}),
		relays:    make(map[string]string),
		relayRing: NewRing(vnodes),
	}
}

func (t *Table[B]) clone() *Table[B] {
	cp := &Table[B]{
		gen:       t.gen + 1,
		ring:      t.ring.Clone(),
		sessions:  make(map[string]Entry, len(t.sessions)),
		backends:  make(map[string]B, len(t.backends)),
		addrs:     make(map[string]string, len(t.addrs)),
		dead:      make(map[string]struct{}, len(t.dead)),
		relays:    make(map[string]string, len(t.relays)),
		relayRing: t.relayRing.Clone(),
	}
	for k, v := range t.sessions {
		cp.sessions[k] = v
	}
	for k, v := range t.backends {
		cp.backends[k] = v
	}
	for k, v := range t.addrs {
		cp.addrs[k] = v
	}
	for k := range t.dead {
		cp.dead[k] = struct{}{}
	}
	for k, v := range t.relays {
		cp.relays[k] = v
	}
	return cp
}

// ------------------------------------------------------------ reads

// Gen is the table generation: 0 for the empty initial table, bumped by
// every published edit (topology change, first-touch placement,
// rebalance flip, fault eviction). Surfaced through session status so
// clients can tell "the fabric changed under me" from "nothing moved".
func (t *Table[B]) Gen() uint64 { return t.gen }

// Lookup returns a session's recorded placement.
func (t *Table[B]) Lookup(sessionID string) (Entry, bool) {
	e, ok := t.sessions[sessionID]
	return e, ok
}

// Home is the shard the ring assigns a session, skipping shards marked
// dead ("" when the ring is empty or everything is dead). Unplaced
// sessions route here; a session evicted by a fault re-homes here on
// its next touch.
func (t *Table[B]) Home(sessionID string) string {
	if len(t.dead) == 0 {
		return t.ring.Owner(sessionID)
	}
	return t.ring.OwnerFunc(sessionID, func(s string) bool {
		_, d := t.dead[s]
		return !d
	})
}

// ReplicaHome is the ring's choice of the next replica shard for a
// session: the first ring successor that is not the primary, not dead,
// has a backend, and is not already taken by an earlier chain hop (""
// when the fabric has no such shard — a one-shard fabric cannot
// replicate, and a K-shard fabric caps chains at K-1 hops).
func (t *Table[B]) ReplicaHome(sessionID, primary string, taken []string) string {
	return t.ring.OwnerFunc(sessionID, func(s string) bool {
		if s == primary {
			return false
		}
		if _, dead := t.dead[s]; dead {
			return false
		}
		for _, h := range taken {
			if h == s {
				return false
			}
		}
		_, ok := t.backends[s]
		return ok
	})
}

// MaxChainDepth is the deepest replica chain the current topology can
// host for any session: live ring members minus the primary, floored at
// zero.
func (t *Table[B]) MaxChainDepth() int {
	live := 0
	for _, s := range t.ring.Shards() {
		if _, dead := t.dead[s]; dead {
			continue
		}
		if _, ok := t.backends[s]; ok {
			live++
		}
	}
	if live <= 1 {
		return 0
	}
	return live - 1
}

// Backend returns a shard's handle.
func (t *Table[B]) Backend(shard string) (B, bool) {
	b, ok := t.backends[shard]
	return b, ok
}

// HasBackend reports whether a shard handle is registered (it may
// already be off the ring mid-removal).
func (t *Table[B]) HasBackend(shard string) bool {
	_, ok := t.backends[shard]
	return ok
}

// InRing reports ring membership.
func (t *Table[B]) InRing(shard string) bool { return t.ring.Has(shard) }

// RingSize reports the ring member count.
func (t *Table[B]) RingSize() int { return t.ring.Size() }

// Addr returns a shard's advertised RMI endpoint ("" when none, or when
// the shard is gone — a departed shard never leaks a stale endpoint).
func (t *Table[B]) Addr(shard string) string {
	if !t.HasBackend(shard) {
		return ""
	}
	return t.addrs[shard]
}

// AddrEntry returns the raw recorded endpoint for a shard, whether or
// not it currently has a backend (an operator may record the endpoint
// before the shard joins) — the no-op check for SetAddr callers.
func (t *Table[B]) AddrEntry(shard string) string { return t.addrs[shard] }

// IsDead reports whether the health prober marked a shard unreachable.
func (t *Table[B]) IsDead(shard string) bool {
	_, ok := t.dead[shard]
	return ok
}

// Shards lists ring members, sorted.
func (t *Table[B]) Shards() []string { return t.ring.Shards() }

// DeadShards lists the shards currently marked dead, sorted.
func (t *Table[B]) DeadShards() []string {
	if len(t.dead) == 0 {
		return nil
	}
	out := make([]string, 0, len(t.dead))
	for s := range t.dead {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Relays lists registered relay names, sorted.
func (t *Table[B]) Relays() []string { return t.relayRing.Shards() }

// RelayAddr returns a relay's advertised endpoint ("" for in-process
// relays or unknown names).
func (t *Table[B]) RelayAddr(name string) string { return t.relays[name] }

// HasRelay reports whether a relay is registered.
func (t *Table[B]) HasRelay(name string) bool {
	_, ok := t.relays[name]
	return ok
}

// RelayHome is the relay the relay ring assigns a session ("" when no
// relays are registered) — the deterministic "nearest relay" choice
// every router replica agrees on without coordination.
func (t *Table[B]) RelayHome(sessionID string) string {
	return t.relayRing.Owner(sessionID)
}

// Sessions lists every placed session, sorted.
func (t *Table[B]) Sessions() []string {
	out := make([]string, 0, len(t.sessions))
	for id := range t.sessions {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// EachSession visits every placement (iteration order unspecified).
func (t *Table[B]) EachSession(f func(sessionID string, e Entry)) {
	for id, e := range t.sessions {
		f(id, e)
	}
}

// EachBackend visits every registered shard handle.
func (t *Table[B]) EachBackend(f func(shard string, b B)) {
	for name, b := range t.backends {
		f(name, b)
	}
}

// -------------------------------------------------------- mutations
//
// Valid only on the cloned table passed to a Store.Update edit
// function; calling them on a table obtained from Load is a data race.

// Place records a session's owner, preserving any recorded replica
// chain (minus the new owner if it was a chain member — a replica must
// never double as the owner).
func (t *Table[B]) Place(sessionID, shard string, pinned bool) {
	e := t.sessions[sessionID]
	e.Shard, e.Pinned = shard, pinned
	if e.HasReplica(shard) {
		e.Replicas = sanitizeChain(e.Replicas, shard)
	}
	t.sessions[sessionID] = e
}

// SetReplicas records a session's full replica chain in order (nil or
// empty clears it). The owner, duplicates, and empty names are dropped;
// the stored slice is a fresh copy so published tables stay immutable.
// No-op for unplaced sessions.
func (t *Table[B]) SetReplicas(sessionID string, chain []string) {
	e, ok := t.sessions[sessionID]
	if !ok {
		return
	}
	e.Replicas = sanitizeChain(chain, e.Shard)
	t.sessions[sessionID] = e
}

// SetReplica records a single-standby chain ("" clears the whole
// chain) — the depth-1 convenience kept for callers that predate
// chains. No-op for unplaced sessions or when the named shard is the
// session's owner.
func (t *Table[B]) SetReplica(sessionID, shard string) {
	e, ok := t.sessions[sessionID]
	if !ok || shard == e.Shard {
		return
	}
	if shard == "" {
		e.Replicas = nil
	} else {
		e.Replicas = []string{shard}
	}
	t.sessions[sessionID] = e
}

// DropReplica removes one shard from a session's chain, preserving the
// order of the remaining hops. No-op when absent.
func (t *Table[B]) DropReplica(sessionID, shard string) {
	e, ok := t.sessions[sessionID]
	if !ok || !e.HasReplica(shard) {
		return
	}
	out := make([]string, 0, len(e.Replicas)-1)
	for _, r := range e.Replicas {
		if r != shard {
			out = append(out, r)
		}
	}
	if len(out) == 0 {
		out = nil
	}
	e.Replicas = out
	t.sessions[sessionID] = e
}

// Evict forgets a session's placement (teardown, or a fault eviction —
// the session re-homes by ring position on its next touch).
func (t *Table[B]) Evict(sessionID string) {
	delete(t.sessions, sessionID)
}

// AddShard registers a backend and joins it to the ring. A re-added
// shard starts alive.
func (t *Table[B]) AddShard(shard string, b B) {
	t.backends[shard] = b
	t.ring.Add(shard)
	delete(t.dead, shard)
}

// RemoveFromRing takes a shard off the ring while keeping its backend —
// the first half of a removal, so its sessions can still be exported.
func (t *Table[B]) RemoveFromRing(shard string) {
	t.ring.Remove(shard)
}

// DropShard forgets a shard entirely: backend, advertised endpoint,
// fault mark. Clearing addrs here is what keeps PlacementInfo from ever
// reporting a departed shard's endpoint.
func (t *Table[B]) DropShard(shard string) {
	t.ring.Remove(shard)
	delete(t.backends, shard)
	delete(t.addrs, shard)
	delete(t.dead, shard)
}

// SetAddr records a shard's RMI endpoint ("" clears it).
func (t *Table[B]) SetAddr(shard, addr string) {
	if addr == "" {
		delete(t.addrs, shard)
		return
	}
	t.addrs[shard] = addr
}

// AddRelay registers a read relay and joins it to the relay ring.
func (t *Table[B]) AddRelay(name, addr string) {
	t.relays[name] = addr
	t.relayRing.Add(name)
}

// RemoveRelay forgets a relay entirely.
func (t *Table[B]) RemoveRelay(name string) {
	delete(t.relays, name)
	t.relayRing.Remove(name)
}

// SetRelayAddr records a relay's advertised endpoint ("" clears it back
// to in-process). No-op for unregistered relays.
func (t *Table[B]) SetRelayAddr(name, addr string) {
	if _, ok := t.relays[name]; ok {
		t.relays[name] = addr
	}
}

// SetDead marks or clears a shard's fault state.
func (t *Table[B]) SetDead(shard string, on bool) {
	if on {
		t.dead[shard] = struct{}{}
		return
	}
	delete(t.dead, shard)
}

// EvictSessionsOn drops every placement pointing at a shard and returns
// the evicted session IDs, sorted — the fault path: the state is gone,
// so each session lazily re-homes on its next touch and its engines
// rebuild it through the normal NeedFull re-baseline.
func (t *Table[B]) EvictSessionsOn(shard string) []string {
	var out []string
	for id, e := range t.sessions {
		if e.Shard == shard {
			out = append(out, id)
			delete(t.sessions, id)
		}
	}
	sort.Strings(out)
	return out
}

// ------------------------------------------------------------ store

// Store publishes Tables RCU-style: Load is one atomic pointer read,
// Update serializes writers and swaps in an edited clone.
type Store[B any] struct {
	mu  sync.Mutex
	cur atomic.Pointer[Table[B]]
}

// NewStore creates a store holding an empty table (vnodes <= 0 selects
// the default virtual-node count).
func NewStore[B any](vnodes int) *Store[B] {
	s := &Store[B]{}
	s.cur.Store(newTable[B](vnodes))
	return s
}

// Load returns the current table. Never nil, never blocks.
func (s *Store[B]) Load() *Table[B] { return s.cur.Load() }

// Update clones the current table, applies edit to the clone, and
// publishes it iff edit returns true (false discards the clone without
// a generation bump — a recognized no-op). Returns the table readers
// see afterwards. Edits run under the store mutex, so they see every
// prior edit and may derive decisions from the clone's state.
func (s *Store[B]) Update(edit func(t *Table[B]) bool) *Table[B] {
	s.mu.Lock()
	defer s.mu.Unlock()
	next := s.cur.Load().clone()
	if !edit(next) {
		return s.cur.Load()
	}
	s.cur.Store(next)
	return next
}
