package shard

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ipa-grid/ipa/internal/merge"
	"github.com/ipa-grid/ipa/internal/obs"
)

// Balancer is the load-weighted rebalancing policy on top of the
// placement table: it probes every shard's lock-free SessionList/Stats
// surface on a ticker, turns the cumulative per-session publish+poll
// counters into rates (deltas between rounds), and migrates the
// hottest sessions off overloaded shards through the router's ordinary
// seal→export→import→flip handoff. The ring keeps assigning *new*
// sessions uniformly; the balancer corrects the skew the hash cannot
// see — a handful of wildly hot sessions landing on one shard.
//
// Policy knobs: at most MaxMoves migrations per round, and a shard is
// only "overloaded" when its load exceeds the fabric mean by more than
// the hysteresis Band, so the balancer converges instead of
// ping-ponging sessions between near-equal shards. A move is only made
// when it strictly narrows the hot/cold gap. DisableRebalance keeps
// the probes (rates stay warm) but never moves — the A11 ablation
// baseline.
type Balancer struct {
	// Interval between probe rounds for Start (default 5s).
	Interval time.Duration
	// MaxMoves bounds migrations per round (default 2) — each move is a
	// full session handoff, so rounds stay cheap and mistakes small.
	MaxMoves int
	// Band is the hysteresis band: a shard is overloaded only when its
	// load exceeds the fabric mean by more than this fraction
	// (default 0.25).
	Band float64
	// DisableRebalance probes without ever moving a session — the
	// ablation baseline.
	DisableRebalance bool

	router *Router

	// runMu serializes probe rounds; mu guards only the quick state
	// below, so Stop (and LocalGrid.Close behind it) never waits out a
	// round's RPCs and handoffs.
	runMu sync.Mutex
	mu    sync.Mutex
	// prev maps "shard\x00session" → the last observed cumulative
	// counter; keyed per shard so a migrated session starts a fresh
	// rate window on its new owner instead of a bogus negative one.
	prev map[string]int64
	stop chan struct{}

	moves  atomic.Int64
	rounds atomic.Int64
}

// NewBalancer creates a balancer over the router's fabric (it does not
// start probing until Start or RunOnce).
func NewBalancer(r *Router) *Balancer {
	return &Balancer{router: r, prev: make(map[string]int64)}
}

// Moves reports the total sessions migrated across all rounds.
func (b *Balancer) Moves() int64 { return b.moves.Load() }

// Rounds reports how many probe rounds have completed.
func (b *Balancer) Rounds() int64 { return b.rounds.Load() }

// sessLoad is one session's observed rate on one shard.
type sessLoad struct {
	sid  string
	rate int64
}

// RunOnce performs one probe-and-rebalance round, returning how many
// sessions it moved. The first round only warms the rate window.
func (b *Balancer) RunOnce() (int, error) {
	b.runMu.Lock()
	defer b.runMu.Unlock()
	defer b.rounds.Add(1)

	t := b.router.Table()
	var alive []string
	for _, name := range t.Shards() {
		if !t.IsDead(name) {
			alive = append(alive, name)
		}
	}

	// Probe phase — RPCs, no locks held. Only shards that answer
	// participate in this round's move math: an unreachable shard must
	// be neither a donor nor — with its apparently-zero load — the
	// obvious (and doomed) move target.
	type probeResult struct {
		name  string
		loads []merge.SessionLoad
	}
	var probes []probeResult
	for _, name := range alive {
		be, ok := t.Backend(name)
		if !ok {
			continue
		}
		var reply merge.SessionsReply
		if err := be.SessionList(merge.SessionsArgs{}, &reply); err != nil {
			// An unreachable shard is the health prober's problem, not
			// the balancer's; skip it this round.
			continue
		}
		probes = append(probes, probeResult{name: name, loads: reply.Loads})
	}

	// Rate phase — cumulative counters → per-session rates since last
	// round, under the quick state mutex.
	loads := make(map[string][]sessLoad)
	shardLoad := make(map[string]int64)
	seen := make(map[string]struct{})
	probed := make([]string, 0, len(probes))
	b.mu.Lock()
	for _, p := range probes {
		probed = append(probed, p.name)
		for _, l := range p.loads {
			// Only sessions the router actually places here count: a
			// handoff tombstone or a stray pre-migration copy must not
			// make a shard look loaded.
			if e, ok := t.Lookup(l.SessionID); !ok || e.Shard != p.name {
				continue
			}
			cum := l.Publishes + l.Polls
			key := p.name + "\x00" + l.SessionID
			seen[key] = struct{}{}
			prev, known := b.prev[key]
			b.prev[key] = cum
			if !known {
				continue // first sighting on this shard: no rate yet
			}
			rate := cum - prev
			if rate < 0 {
				rate = 0
			}
			loads[p.name] = append(loads[p.name], sessLoad{sid: l.SessionID, rate: rate})
			shardLoad[p.name] += rate
		}
	}
	// Forget counters for sessions that moved or were dropped — judged
	// only against shards that answered this round, so one dropped
	// probe doesn't wipe a hot shard's whole rate window — plus any
	// keyed to a shard that left the fabric entirely.
	probedSet := make(map[string]bool, len(probed))
	for _, name := range probed {
		probedSet[name] = true
	}
	for k := range b.prev {
		shard, _, _ := strings.Cut(k, "\x00")
		if probedSet[shard] {
			if _, ok := seen[k]; !ok {
				delete(b.prev, k)
			}
		} else if !t.HasBackend(shard) {
			delete(b.prev, k)
		}
	}
	b.mu.Unlock()
	if b.DisableRebalance || len(probed) < 2 {
		return 0, nil
	}
	var total int64
	for _, name := range probed {
		total += shardLoad[name]
	}
	if total == 0 {
		return 0, nil
	}
	mean := float64(total) / float64(len(probed))
	band := b.Band
	if band <= 0 {
		band = 0.25
	}
	maxMoves := b.MaxMoves
	if maxMoves <= 0 {
		maxMoves = 2
	}

	moved := 0
	for moved < maxMoves {
		hot, cold := probed[0], probed[0]
		for _, name := range probed[1:] {
			if shardLoad[name] > shardLoad[hot] {
				hot = name
			}
			if shardLoad[name] < shardLoad[cold] {
				cold = name
			}
		}
		if float64(shardLoad[hot]) <= mean*(1+band) {
			break // within the hysteresis band: converged
		}
		cands := loads[hot]
		sort.Slice(cands, func(i, j int) bool { return cands[i].rate > cands[j].rate })
		progressed := false
		for i, c := range cands {
			if c.rate == 0 {
				break
			}
			if shardLoad[cold]+c.rate >= shardLoad[hot] {
				// Moving this one would just swap which shard is hot;
				// try a cooler session.
				continue
			}
			if err := b.router.MoveSession(c.sid, cold); err != nil {
				return moved, err
			}
			shardLoad[hot] -= c.rate
			shardLoad[cold] += c.rate
			loads[hot] = append(append([]sessLoad(nil), cands[:i]...), cands[i+1:]...)
			loads[cold] = append(loads[cold], c)
			// The session's counters restart on the new shard; drop the
			// old-key rate window now rather than waiting a round.
			b.mu.Lock()
			delete(b.prev, hot+"\x00"+c.sid)
			b.mu.Unlock()
			b.moves.Add(1)
			obsMoves.Inc()
			obs.Emit(obs.EventMove, cold, c.sid, 0, fmt.Sprintf("from %s, rate %d", hot, c.rate))
			moved++
			progressed = true
			break
		}
		if !progressed {
			break
		}
	}
	return moved, nil
}

// Start launches the probe ticker (no-op if already running).
func (b *Balancer) Start() {
	b.mu.Lock()
	if b.stop != nil {
		b.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	b.stop = stop
	b.mu.Unlock()
	interval := b.Interval
	if interval <= 0 {
		interval = 5 * time.Second
	}
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				// Move errors are transient (a racing teardown, an
				// import refusal rolled back); the next round retries
				// from fresh observations.
				b.RunOnce()
			}
		}
	}()
}

// Stop halts the probe ticker (no-op if not running).
func (b *Balancer) Stop() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.stop == nil {
		return
	}
	close(b.stop)
	b.stop = nil
}
