// Anti-entropy: continuous chain repair. The mirror stream already
// self-heals on the failures it can see — an errored hop or a NeedFull
// answer re-baselines — but silent drift is invisible to it: a replica
// that quietly holds the wrong state at a plausible version, a copy
// stranded on a stale epoch by a failover it slept through, or a chain
// hop that simply stopped advancing while the session kept publishing.
// The anti-entropy loop walks every session's chain on a ticker,
// compares each hop's (epoch, version) pair against the owner's, and
// re-baselines copies that are provably wrong (foreign epoch, or ahead
// of the owner) immediately and copies that are stalled (trailing the
// owner while neither side moved since the previous sweep) on the
// second sighting — one round of grace absorbs normal asynchronous
// mirror lag without ever repairing a healthy chain.

package shard

import (
	"fmt"
	"sync"
	"time"

	"github.com/ipa-grid/ipa/internal/obs"
)

// aeSighting is one suspicious hop observation retained between sweeps:
// repair fires only if the same (owner version, hop version) pair is
// still in place next round.
type aeSighting struct {
	ownerVersion int64
	hopVersion   int64
}

// AntiEntropy is the chain-repair prober. Wire it next to Health: both
// tick over the same Router, one watching shard liveness, this one
// watching copy correctness.
type AntiEntropy struct {
	// Interval between sweeps for Start (default 5s).
	Interval time.Duration
	// OnRepair, if set, is called after a copy is re-baselined (operator
	// logging): session, the repaired hop, and why.
	OnRepair func(sessionID, hop, reason string)

	router *Router

	mu        sync.Mutex
	suspected map[string]aeSighting // session + "\x00" + hop → last sighting
	stop      chan struct{}
}

// NewAntiEntropy creates a chain-repair prober over the router's fabric
// (it does not sweep until Start or RunOnce).
func NewAntiEntropy(r *Router) *AntiEntropy {
	return &AntiEntropy{router: r, suspected: make(map[string]aeSighting)}
}

// RunOnce sweeps every session chain once and returns the hops it
// re-baselined as "session/hop" strings, sorted by visit order.
func (a *AntiEntropy) RunOnce() (repaired []string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	obsAntiEntropyRounds.Inc()
	t := a.router.Table()
	seen := make(map[string]struct{})
	for _, sid := range t.Sessions() {
		e, ok := t.Lookup(sid)
		if !ok || len(e.Replicas) == 0 || t.IsDead(e.Shard) {
			continue
		}
		for _, hop := range a.router.ReplicaLagChain(sid) {
			key := sid + "\x00" + hop.Shard
			seen[key] = struct{}{}
			reason := ""
			switch {
			case hop.Stale && hop.Version == 0 && hop.Epoch == 0:
				// Unreachable or empty copy: the mirror stream (or the
				// health prober, if the shard is gone) owns this case.
				delete(a.suspected, key)
				continue
			case hop.Stale:
				// Provably wrong: a foreign epoch or a copy ahead of its
				// owner can never converge through the delta stream.
				reason = fmt.Sprintf("drift: hop (epoch %d, version %d) vs owner", hop.Epoch, hop.Version)
			case hop.Lag > 0:
				// Trailing — normal for an asynchronous stream. Repair
				// only if neither side moved since the last sweep: a
				// stream making any progress changes one of the versions.
				prev, sighted := a.suspected[key]
				ownerVersion := hop.Version + hop.Lag
				if !sighted || prev.ownerVersion != ownerVersion || prev.hopVersion != hop.Version {
					a.suspected[key] = aeSighting{ownerVersion: ownerVersion, hopVersion: hop.Version}
					continue
				}
				reason = fmt.Sprintf("stalled: version %d trailing owner %d across two sweeps", hop.Version, ownerVersion)
			default:
				delete(a.suspected, key)
				continue
			}
			delete(a.suspected, key)
			if err := a.router.rebaseline(sid, e.Shard, hop.Shard); err != nil {
				continue
			}
			obsAntiEntropyRepairs.Inc()
			obs.Emit(obs.EventRepair, hop.Shard, sid, 0, reason)
			repaired = append(repaired, sid+"/"+hop.Shard)
			if a.OnRepair != nil {
				a.OnRepair(sid, hop.Shard, reason)
			}
		}
	}
	// Drop sightings for chains that no longer exist.
	for key := range a.suspected {
		if _, ok := seen[key]; !ok {
			delete(a.suspected, key)
		}
	}
	return repaired
}

// Start launches the sweep ticker (no-op if already running).
func (a *AntiEntropy) Start() {
	a.mu.Lock()
	if a.stop != nil {
		a.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	a.stop = stop
	a.mu.Unlock()
	interval := a.Interval
	if interval <= 0 {
		interval = 5 * time.Second
	}
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				a.RunOnce()
			}
		}
	}()
}

// Stop halts the sweep ticker (no-op if not running).
func (a *AntiEntropy) Stop() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.stop == nil {
		return
	}
	close(a.stop)
	a.stop = nil
}
