package shard

import (
	"fmt"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"

	"github.com/ipa-grid/ipa/internal/merge"
)

// newReplicatedFabric builds a Replicate=true router over n flaky-
// wrapped managers plus the flat single-manager reference.
func newReplicatedFabric(t *testing.T, n int) (*Router, map[string]*flakyBackend, *merge.Manager) {
	t.Helper()
	router := NewRouter(0)
	router.Replicate = true
	flaky := make(map[string]*flakyBackend, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("shard%02d", i)
		fb := &flakyBackend{inner: merge.NewManager()}
		flaky[name] = fb
		if err := router.AddShard(name, fb); err != nil {
			t.Fatal(err)
		}
	}
	return router, flaky, merge.NewManager()
}

// killAndFail kills the named shard and drives the health prober to the
// failover (Threshold 2: the first probe round must not yet react).
func killAndFail(t *testing.T, router *Router, flaky map[string]*flakyBackend, victim string) (promoted []string) {
	t.Helper()
	flaky[victim].dead.Store(true)
	h := NewHealth(router)
	h.Threshold = 2
	h.OnFailover = func(shard string, sids []string) { promoted = sids }
	if died, _ := h.RunOnce(); len(died) != 0 {
		t.Fatalf("one failed probe already killed %v (threshold 2)", died)
	}
	if died, _ := h.RunOnce(); !reflect.DeepEqual(died, []string{victim}) {
		t.Fatalf("died = %v, want [%s]", died, victim)
	}
	return promoted
}

// TestFailoverRecoversFinishedSessions is the headline regression test:
// engines publish, FINISH, and only then does the owning shard die. The
// engines' re-baseline path cannot save anyone (nobody will publish
// again) — with replication on, every byte of merged state must come
// back from the promoted replicas, under a bumped epoch, and the
// sessions must be re-protected with fresh standbys.
func TestFailoverRecoversFinishedSessions(t *testing.T) {
	router, flaky, flat := newReplicatedFabric(t, 3)

	const victim = "shard00"
	var workers []*loadWorker
	victims := map[string]bool{}
	for _, sid := range sessionsHomedOn(t, router, victim, 3, "fin") {
		workers = append(workers, newLoadWorker(t, router, flat, sid))
		victims[sid] = true
	}
	for i, n := 0, 0; n < 3; i++ {
		sid := fmt.Sprintf("fin-safe-%d", i)
		if router.Placement(sid) == victim {
			continue
		}
		workers = append(workers, newLoadWorker(t, router, flat, sid))
		n++
	}
	for r := 0; r < 5; r++ {
		for _, w := range workers {
			w.publish(t, float64(r%10))
		}
	}
	// All engines are now finished: not another publish for the rest of
	// the test. Record the pre-kill incarnation of one victim session.
	victimSid := workers[0].sid
	var preKill merge.PollReply
	if err := router.Poll(merge.PollArgs{SessionID: victimSid}, &preKill); err != nil {
		t.Fatal(err)
	}
	if preKill.Epoch == 0 {
		t.Fatal("live session reported epoch 0")
	}

	promoted := killAndFail(t, router, flaky, victim)
	want := make([]string, 0, len(victims))
	for sid := range victims {
		want = append(want, sid)
	}
	sort.Strings(want)
	if !reflect.DeepEqual(promoted, want) {
		t.Fatalf("promoted %v, want all victim sessions %v", promoted, want)
	}
	if got := router.Promotions(); got != int64(len(victims)) {
		t.Fatalf("Promotions() = %d, want %d", got, len(victims))
	}

	// Zero merged-state loss: every session — including the ones whose
	// engines will never publish again — matches the flat reference.
	for _, w := range workers {
		got, want := fullState(t, router, w.sid), fullState(t, flat, w.sid)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("session %s lost merged state across the failover (got %d paths, want %d)",
				w.sid, len(got), len(want))
		}
	}
	// The promoted incarnation announces itself through the epoch stamp.
	var postKill merge.PollReply
	if err := router.Poll(merge.PollArgs{SessionID: victimSid}, &postKill); err != nil {
		t.Fatal(err)
	}
	if postKill.Epoch <= preKill.Epoch {
		t.Fatalf("post-failover epoch %d not above pre-kill epoch %d", postKill.Epoch, preKill.Epoch)
	}
	// Failed-over sessions moved off the dead shard and are re-protected:
	// a fresh replica on a live shard, seeded eagerly (a finished session
	// never publishes again, so lazy assignment would never run).
	for sid := range victims {
		home := router.Placement(sid)
		if home == victim || home == "" {
			t.Fatalf("session %s still homed on the dead shard (%q)", sid, home)
		}
		rep := router.ReplicaOf(sid)
		if rep == "" || rep == victim || rep == home {
			t.Fatalf("session %s re-replicated to %q (home %q, dead %q)", sid, rep, home, victim)
		}
	}
}

// TestFailoverAblationWithoutReplicationLosesState documents what the
// DisableReplication baseline costs: the same finished-engines kill
// evicts the victim sessions and their merged state is simply gone.
func TestFailoverAblationWithoutReplicationLosesState(t *testing.T) {
	router, flaky, flat := newReplicatedFabric(t, 3)
	router.Replicate = false

	const victim = "shard00"
	var workers []*loadWorker
	for _, sid := range sessionsHomedOn(t, router, victim, 3, "lossy") {
		workers = append(workers, newLoadWorker(t, router, flat, sid))
	}
	for r := 0; r < 5; r++ {
		for _, w := range workers {
			w.publish(t, float64(r%10))
		}
	}
	promoted := killAndFail(t, router, flaky, victim)
	if len(promoted) != 0 || router.Promotions() != 0 {
		t.Fatalf("unreplicated router promoted %v", promoted)
	}
	for _, w := range workers {
		if got := fullState(t, router, w.sid); len(got) != 0 {
			t.Fatalf("evicted session %s still answers %d paths without a replica", w.sid, len(got))
		}
		if want := fullState(t, flat, w.sid); len(want) == 0 {
			t.Fatalf("flat reference for %s is empty — the test measured nothing", w.sid)
		}
	}
}

// zombieBackend models a partitioned-but-alive shard: health probes
// (Stats) fail, so the prober declares it dead, but every other call
// still lands — the straggler-write scenario epoch fencing exists for.
type zombieBackend struct {
	Backend
	inner     *merge.Manager
	partition atomic.Bool
}

func (z *zombieBackend) Stats(a merge.StatsArgs, r *merge.StatsReply) error {
	if z.partition.Load() {
		return errShardDown
	}
	return z.inner.Stats(a, r)
}

// TestFailoverFencesZombiePrimary: when the "dead" primary is actually
// a zombie the prober can't reach, failover must fence its copies —
// straggler publishes draw NeedFull instead of landing on deposed
// state, and polls against it answer like an unknown session.
func TestFailoverFencesZombiePrimary(t *testing.T) {
	router := NewRouter(0)
	router.Replicate = true
	zombies := make(map[string]*zombieBackend, 3)
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("shard%02d", i)
		m := merge.NewManager()
		z := &zombieBackend{Backend: m, inner: m}
		zombies[name] = z
		if err := router.AddShard(name, z); err != nil {
			t.Fatal(err)
		}
	}
	flat := merge.NewManager()

	const victim = "shard00"
	sid := sessionsHomedOn(t, router, victim, 1, "zombie")[0]
	w := newLoadWorker(t, router, flat, sid)
	for r := 0; r < 4; r++ {
		w.publish(t, float64(r))
	}

	zombies[victim].partition.Store(true)
	h := NewHealth(router)
	h.Threshold = 2
	h.RunOnce()
	if died, _ := h.RunOnce(); !reflect.DeepEqual(died, []string{victim}) {
		t.Fatalf("died = %v, want [%s]", died, victim)
	}
	if router.Promotions() != 1 {
		t.Fatalf("Promotions() = %d, want 1", router.Promotions())
	}

	// A straggler engine with a stale routing table writes straight at
	// the zombie. The fence must refuse it — incremental or baseline.
	deposed := zombies[victim].inner
	w.hist.Fill(9) // a fill the reference never sees: it must not land
	d, err := w.tree.Delta()
	if err != nil {
		t.Fatal(err)
	}
	var rep merge.PublishReply
	if err := deposed.Publish(merge.PublishArgs{SessionID: sid, WorkerID: "w0", Seq: 99, Delta: d}, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Accepted || !rep.NeedFull {
		t.Fatalf("straggler publish on the zombie = %+v, want refused with NeedFull", rep)
	}
	full, err := w.tree.FullDelta()
	if err != nil {
		t.Fatal(err)
	}
	if err := deposed.Publish(merge.PublishArgs{SessionID: sid, WorkerID: "w0", Seq: 100, Delta: full}, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Accepted {
		t.Fatal("straggler re-baseline landed on the fenced zombie copy")
	}
	// Direct polls against the zombie answer like an unknown session, so
	// a direct-polling client re-resolves placement and finds the
	// promoted owner.
	var poll merge.PollReply
	if err := deposed.Poll(merge.PollArgs{SessionID: sid, Full: true}, &poll); err != nil {
		t.Fatal(err)
	}
	if poll.Version != 0 || len(poll.Entries) != 0 {
		t.Fatalf("zombie poll = version %d, %d entries; want fenced-empty", poll.Version, len(poll.Entries))
	}
	// The promoted copy, reached through the router, holds the true state —
	// everything accepted before the kill, nothing from the straggler.
	got, want := fullState(t, router, sid), fullState(t, flat, sid)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("promoted state diverged from the flat reference")
	}
}

// TestRevivalReapsDeposedCopies: a failed-over shard that comes back
// must not serve (or later resurrect) the state it was deposed from —
// revival tombstones those copies while the promoted owners keep the
// sessions, and the fabric still matches the flat reference.
func TestRevivalReapsDeposedCopies(t *testing.T) {
	router, flaky, flat := newReplicatedFabric(t, 3)

	const victim = "shard00"
	var workers []*loadWorker
	victims := map[string]bool{}
	for _, sid := range sessionsHomedOn(t, router, victim, 2, "rev") {
		workers = append(workers, newLoadWorker(t, router, flat, sid))
		victims[sid] = true
	}
	for r := 0; r < 4; r++ {
		for _, w := range workers {
			w.publish(t, float64(r))
		}
	}
	killAndFail(t, router, flaky, victim)
	homes := map[string]string{}
	for sid := range victims {
		homes[sid] = router.Placement(sid)
	}

	// The shard comes back with its pre-failover copies intact.
	flaky[victim].dead.Store(false)
	h := NewHealth(router)
	h.Threshold = 2
	if _, revived := h.RunOnce(); !reflect.DeepEqual(revived, []string{victim}) {
		t.Fatalf("revived = %v, want [%s]", revived, victim)
	}
	// Promoted sessions stay on their new homes (pinned across revival).
	for sid, home := range homes {
		if got := router.Placement(sid); got != home {
			t.Fatalf("revival moved session %s from %s to %s", sid, home, got)
		}
	}
	// The revived shard's deposed copies are reaped: a direct poll (a
	// straggler client that never re-resolved) finds nothing to trust.
	for sid := range victims {
		var poll merge.PollReply
		if err := flaky[victim].inner.Poll(merge.PollArgs{SessionID: sid, Full: true}, &poll); err != nil {
			t.Fatal(err)
		}
		if poll.Version != 0 || len(poll.Entries) != 0 {
			t.Fatalf("revived shard still serves deposed session %s (version %d, %d entries)",
				sid, poll.Version, len(poll.Entries))
		}
	}
	// And nothing was lost anywhere in the shuffle.
	for _, w := range workers {
		got, want := fullState(t, router, w.sid), fullState(t, flat, w.sid)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("session %s diverged across kill + revival", w.sid)
		}
	}
}
