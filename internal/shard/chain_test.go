package shard

import (
	"reflect"
	"testing"
	"time"

	"github.com/ipa-grid/ipa/internal/aida"
	"github.com/ipa-grid/ipa/internal/merge"
	"github.com/ipa-grid/ipa/internal/obs"
)

// TestChainDepthTwoSurvivesTwoFailures: with K=2 every session owns a
// primary plus a two-hop replica chain, so the fabric must ride out two
// sequential shard deaths with zero merged-state loss. The first
// failover must promote the deepest hop (the (epoch, version) tie-break
// prefers depth), rebuild the chain back to depth K among the
// survivors, and leave the second death just as survivable.
func TestChainDepthTwoSurvivesTwoFailures(t *testing.T) {
	router, flaky, flat := newReplicatedFabric(t, 4)
	router.ReplicaDepth = 2

	const victim = "shard00"
	var workers []*loadWorker
	for _, sid := range sessionsHomedOn(t, router, victim, 3, "k2") {
		workers = append(workers, newLoadWorker(t, router, flat, sid))
	}
	for r := 0; r < 6; r++ {
		for _, w := range workers {
			w.publish(t, float64(r%10))
		}
	}
	router.drainMirrors()

	// Every session carries a full two-hop chain of distinct live shards.
	detail := workers[0].sid
	chain := router.ReplicasOf(detail)
	if len(chain) != 2 {
		t.Fatalf("chain for %s = %v, want depth 2", detail, chain)
	}
	if chain[0] == chain[1] || chain[0] == victim || chain[1] == victim {
		t.Fatalf("degenerate chain %v (primary %s)", chain, victim)
	}
	preEpoch := router.Epoch(detail)

	promoted := killAndFail(t, router, flaky, victim)
	if len(promoted) != len(workers) {
		t.Fatalf("promoted %v, want all %d victim sessions", promoted, len(workers))
	}
	// Equal (epoch, version) down the chain: the tie-break promotes the
	// deepest caught-up hop, not merely the first standby.
	if got := router.Placement(detail); got != chain[1] {
		t.Fatalf("promoted on %s, want deepest hop %s of chain %v", got, chain[1], chain)
	}
	if e := router.Epoch(detail); e <= preEpoch {
		t.Fatalf("epoch %d did not advance past %d across failover", e, preEpoch)
	}
	for _, w := range workers {
		got, want := fullState(t, router, w.sid), fullState(t, flat, w.sid)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("session %s lost state across first failover", w.sid)
		}
	}
	// Eager rebuild: the chain is back at depth K on live shards only.
	rebuilt := router.ReplicasOf(detail)
	if len(rebuilt) != 2 {
		t.Fatalf("chain not rebuilt to depth 2 after failover: %v", rebuilt)
	}
	for _, h := range rebuilt {
		if h == victim || h == router.Placement(detail) {
			t.Fatalf("rebuilt chain %v contains dead shard or primary", rebuilt)
		}
	}

	// Second failure: kill the promoted primary too. Two of four shards
	// are now dead — K=2 must still hand every byte to a survivor.
	second := router.Placement(detail)
	promoted = killAndFail(t, router, flaky, second)
	if len(promoted) == 0 {
		t.Fatalf("second failover promoted nothing")
	}
	for _, w := range workers {
		got, want := fullState(t, router, w.sid), fullState(t, flat, w.sid)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("session %s lost state across second failover", w.sid)
		}
	}
}

// TestFailoverPromotesCaughtUpOverDeeper: when the chain's hops are
// NOT equally caught up, version order must beat the depth tie-break —
// a shallower hop holding a newer version wins promotion.
func TestFailoverPromotesCaughtUpOverDeeper(t *testing.T) {
	router, flaky, flat := newReplicatedFabric(t, 4)
	router.ReplicaDepth = 2

	const victim = "shard00"
	sid := sessionsHomedOn(t, router, victim, 1, "deep")[0]
	w := newLoadWorker(t, router, flat, sid)
	for r := 0; r < 5; r++ {
		w.publish(t, float64(r))
	}
	router.drainMirrors()

	chain := router.ReplicasOf(sid)
	if len(chain) != 2 {
		t.Fatalf("chain = %v, want depth 2", chain)
	}
	// Nudge the SHALLOW hop one version ahead with an empty delta fed
	// straight into its manager — same bytes of state, newer version,
	// exactly what a mirror that landed after the deep hop missed one
	// looks like at pick time.
	shallow := flaky[chain[0]].inner
	var exp merge.ExportReply
	if err := shallow.Export(merge.ExportArgs{SessionID: sid}, &exp); err != nil || !exp.Found {
		t.Fatalf("export from shallow hop: %v found=%v", err, exp.Found)
	}
	var seq int64
	for _, ws := range exp.Workers {
		if ws.WorkerID == "w0" {
			seq = ws.Seq
		}
	}
	if seq == 0 {
		t.Fatalf("shallow hop never saw worker w0: %+v", exp.Workers)
	}
	var mr merge.MirrorReply
	err := shallow.Mirror(merge.MirrorArgs{
		SessionID: sid, WorkerID: "w0", Seq: seq + 1,
		Version: exp.Version + 1, Delta: &aida.DeltaState{},
	}, &mr)
	if err != nil || !mr.Accepted {
		t.Fatalf("version nudge rejected: err=%v reply=%+v", err, mr)
	}

	killAndFail(t, router, flaky, victim)
	if got := router.Placement(sid); got != chain[0] {
		t.Fatalf("promoted on %s, want the caught-up shallow hop %s (chain %v)", got, chain[0], chain)
	}
	got, want := fullState(t, router, sid), fullState(t, flat, sid)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("promoted caught-up hop diverged from the flat reference")
	}
}

// gatedMirrorBackend stalls every Mirror until the gate opens — a
// replica too slow for the mirror stream, forcing the bounded queue
// into backpressure.
type gatedMirrorBackend struct {
	Backend
	gate chan struct{}
}

func (b *gatedMirrorBackend) Mirror(args merge.MirrorArgs, reply *merge.MirrorReply) error {
	<-b.gate
	return b.Backend.Mirror(args, reply)
}

// TestMirrorBackpressureCountsAndRecovers: a stalled replica must not
// drop or reorder mirrors — the full queue blocks publishes instead,
// and the episode is observable: the backpressure counter moves and a
// fabric event lands in the ring. Once the replica drains, every
// accepted byte is on it.
func TestMirrorBackpressureCountsAndRecovers(t *testing.T) {
	router := NewRouter(0)
	router.Replicate = true
	gate := make(chan struct{})
	gated := &gatedMirrorBackend{Backend: merge.NewManager(), gate: gate}
	if err := router.AddShard("shard00", merge.NewManager()); err != nil {
		t.Fatal(err)
	}
	if err := router.AddShard("shard01", gated); err != nil {
		t.Fatal(err)
	}
	flat := merge.NewManager()
	sid := sessionsHomedOn(t, router, "shard00", 1, "bp")[0]
	w := newLoadWorker(t, router, flat, sid)

	before := obsMirrorBackpressure.Value()
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Queue depth + the job stalled in the worker + slack: enough to
		// wedge the publisher against the full queue.
		for i := 0; i < mirrorQueueDepth+16; i++ {
			w.publish(t, float64(i%10))
		}
	}()

	deadline := time.Now().Add(10 * time.Second)
	for obsMirrorBackpressure.Value() == before {
		if time.Now().After(deadline) {
			t.Fatal("mirror queue never reported backpressure")
		}
		time.Sleep(2 * time.Millisecond)
	}
	select {
	case <-done:
		t.Fatal("publisher finished while the mirror queue was wedged")
	default:
	}

	close(gate)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("publisher still blocked after the replica drained")
	}
	router.drainMirrors()

	var found bool
	for _, e := range obs.Events.Since(0, 8192) {
		if e.Kind == obs.EventBackpressure && e.Session == sid {
			found = true
		}
	}
	if !found {
		t.Fatalf("no %q fabric event for session %s", obs.EventBackpressure, sid)
	}
	// Blocked, never lossy: the replica holds every accepted delta.
	var rep merge.PollReply
	if err := gated.Backend.Poll(merge.PollArgs{SessionID: sid, Full: true}, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) == 0 {
		t.Fatal("replica holds no state after the queue drained")
	}
	got, want := fullState(t, router, sid), fullState(t, flat, sid)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("fabric state diverged from flat reference across backpressure")
	}
}
