package shard

import (
	"github.com/ipa-grid/ipa/internal/merge"
	"github.com/ipa-grid/ipa/internal/rmi"
)

// ObjectName is the RMI registration name of one shard's manager on its
// node — "AIDAShard:" + the shard's fabric name. The router dials these
// directly; ordinary engines and clients keep talking to the fabric's
// front door (merge.RMIObjectName), never to individual shards.
func ObjectName(shard string) string { return "AIDAShard:" + shard }

// Remote adapts an RMI connection into a Backend for shards hosted on
// other nodes. All Backend calls are RMI-shaped Manager methods, so the
// remote side needs nothing beyond a per-shard registration. Snapshot
// publishes honor the connection's compression preference exactly like
// a remote engine uplink (forced by rmi.WithCompressedFrames; adaptive
// per-frame otherwise via the transports that built the snapshot).
type Remote struct {
	client *rmi.Client
	object string
	pub    *merge.RemotePublisher
}

// NewRemote wraps an RMI connection to a shard's manager. object is the
// remote registration name ("" = merge.RMIObjectName).
func NewRemote(client *rmi.Client, object string) *Remote {
	if object == "" {
		object = merge.RMIObjectName
	}
	return &Remote{client: client, object: object, pub: merge.NewRemotePublisher(client, object)}
}

// Publish implements Backend over the wire.
func (r *Remote) Publish(args merge.PublishArgs, reply *merge.PublishReply) error {
	return r.pub.Publish(args, reply)
}

// Poll implements Backend over the wire.
func (r *Remote) Poll(args merge.PollArgs, reply *merge.PollReply) error {
	return r.client.Call(r.object+".Poll", args, reply)
}

// Reset implements Backend over the wire.
func (r *Remote) Reset(args merge.ResetArgs, reply *merge.ResetReply) error {
	return r.client.Call(r.object+".Reset", args, reply)
}

// Flush implements Backend over the wire.
func (r *Remote) Flush(args merge.FlushArgs, reply *merge.FlushReply) error {
	return r.client.Call(r.object+".Flush", args, reply)
}

// Export implements Backend over the wire.
func (r *Remote) Export(args merge.ExportArgs, reply *merge.ExportReply) error {
	return r.client.Call(r.object+".Export", args, reply)
}

// Import implements Backend over the wire. Worker baselines are bulky,
// so they ride compressed frames when the connection prefers them.
func (r *Remote) Import(args merge.ImportArgs, reply *merge.ImportReply) error {
	if r.client.Compressed() {
		for i := range args.Workers {
			args.Workers[i].Tree.SetWireCompression(true)
		}
	}
	return r.client.Call(r.object+".Import", args, reply)
}

// Stats implements Backend over the wire.
func (r *Remote) Stats(args merge.StatsArgs, reply *merge.StatsReply) error {
	return r.client.Call(r.object+".Stats", args, reply)
}

// Seal implements Backend over the wire.
func (r *Remote) Seal(args merge.SealArgs, reply *merge.SealReply) error {
	return r.client.Call(r.object+".Seal", args, reply)
}

// DropSession implements Backend over the wire.
func (r *Remote) DropSession(args merge.DropArgs, reply *merge.DropReply) error {
	return r.client.Call(r.object+".DropSession", args, reply)
}

// SessionList implements Backend over the wire.
func (r *Remote) SessionList(args merge.SessionsArgs, reply *merge.SessionsReply) error {
	return r.client.Call(r.object+".SessionList", args, reply)
}

// Mirror implements Backend over the wire. The mirrored delta honors
// the connection's compression preference exactly like a publish.
func (r *Remote) Mirror(args merge.MirrorArgs, reply *merge.MirrorReply) error {
	if args.Delta != nil && r.client.Compressed() {
		args.Delta.SetWireCompression(true)
	}
	return r.client.Call(r.object+".Mirror", args, reply)
}

// Promote implements Backend over the wire.
func (r *Remote) Promote(args merge.PromoteArgs, reply *merge.PromoteReply) error {
	return r.client.Call(r.object+".Promote", args, reply)
}

// Fence implements Backend over the wire.
func (r *Remote) Fence(args merge.FenceArgs, reply *merge.FenceReply) error {
	return r.client.Call(r.object+".Fence", args, reply)
}

var _ Backend = (*Remote)(nil)
