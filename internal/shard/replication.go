// Replication: per-session primary→replica chaining over the machinery
// the fabric already has. The router mirrors every accepted publish —
// the same generation-stamped delta, seq and all — to a replica shard
// chosen from the placement ring, so the replica holds an
// Export/Import-compatible standby copy that re-baselines on NeedFull
// exactly like any transport. When the health prober declares the
// primary dead, the replica is promoted under a bumped session epoch,
// the placement table flips atomically, and both the deposed primary
// and the promoted copy are fenced against the dead incarnation's
// epoch: a zombie shard can neither accept straggler publishes (they
// draw NeedFull until routing flips) nor resurrect stale state through
// a racing re-baseline. Clients full-resync on the epoch stamp they
// already honor.

package shard

import (
	"fmt"
	"sort"

	"github.com/ipa-grid/ipa/internal/aida"
	"github.com/ipa-grid/ipa/internal/merge"
	"github.com/ipa-grid/ipa/internal/obs"
	"github.com/ipa-grid/ipa/internal/shard/placement"
)

// mirrorJob is one queued mirror: an accepted publish (with the epoch
// and version its accept carried) bound for the session's replica. A
// job with a non-nil barrier is a drain sentinel instead.
type mirrorJob struct {
	primary string
	args    merge.PublishArgs
	epoch   int64
	version int64
	barrier chan struct{}
}

// mirrorQueueDepth bounds the in-flight mirror backlog; a full queue
// blocks publishes (backpressure) rather than dropping or reordering.
const mirrorQueueDepth = 256

// enqueueMirror hands an accepted publish to the mirror worker. The
// mirror stream is asynchronous — the publish path pays one channel
// send, not a second apply — but strictly ordered: one worker drains
// the queue FIFO, so per-session seq order is preserved, and failover
// flushes the queue (drainMirrors) before promoting, so a quiesced
// session's replica has every accepted delta by the time it is asked
// to take over.
func (r *Router) enqueueMirror(primary string, args merge.PublishArgs, reply *merge.PublishReply) {
	r.mirrorQueue() <- mirrorJob{
		primary: primary, args: args, epoch: reply.Epoch, version: reply.Version,
	}
}

// mirrorQueue lazily starts the mirror worker (replicating routers
// only; it lives for the router's lifetime).
func (r *Router) mirrorQueue() chan mirrorJob {
	r.mirrorMu.Lock()
	defer r.mirrorMu.Unlock()
	if r.mirrorQ == nil {
		r.mirrorQ = make(chan mirrorJob, mirrorQueueDepth)
		go r.mirrorLoop(r.mirrorQ)
	}
	return r.mirrorQ
}

func (r *Router) mirrorLoop(q chan mirrorJob) {
	for job := range q {
		if job.barrier != nil {
			close(job.barrier)
			continue
		}
		r.mirror(job.primary, job.args, job.epoch, job.version)
	}
}

// drainMirrors blocks until every mirror enqueued before the call has
// been applied — the barrier failover takes before promoting replicas.
func (r *Router) drainMirrors() {
	r.mirrorMu.Lock()
	q := r.mirrorQ
	r.mirrorMu.Unlock()
	if q == nil {
		return
	}
	done := make(chan struct{})
	q <- mirrorJob{barrier: done}
	<-done
}

// mirror forwards one accepted publish to the session's replica,
// assigning (and baselining) a replica first if the session has none
// usable. Mirror failures are absorbed: a missed delta leaves a seq gap
// the next mirror detects, and NeedFull answers trigger a full
// re-baseline — replication self-heals through the same resync contract
// the publish path uses, and the primary's accept is never rolled back.
func (r *Router) mirror(primary string, args merge.PublishArgs, epoch, version int64) {
	t := r.table.Load()
	e, ok := t.Lookup(args.SessionID)
	if !ok || e.Shard != primary {
		return
	}
	replica := e.Replica
	if replica == "" || replica == primary || !t.HasBackend(replica) || t.IsDead(replica) {
		// First touch (or the old replica is gone): assign one, then
		// fall through and mirror this delta to it. The delta stream
		// must not be dropped on assignment — a session's first delta
		// is its full baseline, so the stream alone can bootstrap the
		// standby even when the primary dies before the seeding
		// Export/Import ever succeeds.
		if replica = r.assignReplica(args.SessionID, primary); replica == "" {
			return
		}
		t = r.table.Load()
	}
	rb, ok := t.Backend(replica)
	if !ok {
		return
	}
	margs := merge.MirrorArgs{
		SessionID: args.SessionID, WorkerID: args.WorkerID, Seq: args.Seq,
		Epoch: epoch, Version: version, Delta: args.Delta,
		EventsDone: args.EventsDone, EventsTotal: args.EventsTotal, Log: args.Log,
		// Forward the publish's trace so the replica hop joins the same
		// trace the engine started.
		Trace: args.Trace.NextHop(),
	}
	if margs.Delta == nil {
		// Legacy whole-tree publish (the ablation baseline): forward it
		// as the full baseline it is.
		margs.Delta = &aida.DeltaState{Full: true, Entries: args.Tree.Entries}
	}
	var mr merge.MirrorReply
	if err := rb.Mirror(margs, &mr); err != nil || mr.NeedFull {
		r.rebaseline(args.SessionID, primary, replica)
		return
	}
	if mr.Accepted {
		r.mirrored.Add(1)
		obsMirrored.Inc()
	}
}

// assignReplica picks a replica shard for a session (its ring successor
// skipping the primary and the dead) records it, and seeds it with a
// full baseline (best-effort: a failed seed is healed by the mirror
// stream's own NeedFull re-baseline, or by the stream itself when it
// starts with a full delta). Returns the chosen shard, "" when the
// fabric has no second live shard.
func (r *Router) assignReplica(sessionID, primary string) string {
	var replica string
	r.table.Update(func(m *placement.Table[Backend]) bool {
		e, ok := m.Lookup(sessionID)
		if !ok || e.Shard != primary {
			return false
		}
		replica = m.ReplicaHome(sessionID, primary)
		if replica == "" || replica == e.Replica {
			replica = ""
			return false
		}
		m.SetReplica(sessionID, replica)
		return true
	})
	if replica != "" {
		r.rebaseline(sessionID, primary, replica)
	}
	return replica
}

// rebaseline copies a session's full state from one shard to another
// (Export without seal → Import) — how a replica catches up after a
// miss, a gap, or first assignment. Serialized so NeedFull bursts
// cannot storm a shard with concurrent exports; mirrors racing the copy
// resolve through the seq machinery (a delta the export already covers
// is dropped as stale, a delta it misses gaps and re-baselines again).
func (r *Router) rebaseline(sessionID, from, to string) error {
	r.replMu.Lock()
	defer r.replMu.Unlock()
	t := r.table.Load()
	fb, okF := t.Backend(from)
	tb, okT := t.Backend(to)
	if !okF || !okT {
		return nil
	}
	var exp merge.ExportReply
	if err := fb.Export(merge.ExportArgs{SessionID: sessionID}, &exp); err != nil {
		return err
	}
	if !exp.Found {
		return nil
	}
	var ir merge.ImportReply
	return tb.Import(merge.ImportArgs{
		SessionID: sessionID, Version: exp.Version, Epoch: exp.Epoch,
		Workers: exp.Workers, Removed: exp.Removed, Logs: exp.Logs,
		LastTraceID: exp.LastTraceID,
	}, &ir)
}

// failover handles a shard death with replication on: every session the
// dead shard owned is promoted on its replica (fencing the dead
// incarnation first) or, with no usable replica, evicted as before.
// Caller holds topoMu; t is the table that recorded the death.
func (r *Router) failover(t *placement.Table[Backend], dead string) (evicted, promoted []string) {
	// Flush the asynchronous mirror stream first: every delta the dead
	// primary accepted before it died is on the replicas before any of
	// them is promoted. (A publish racing the flip enqueues later, with
	// the dead incarnation's epoch — the replica answers NeedFull and
	// the stream re-baselines; nothing stale sticks.) The table is
	// re-read after the barrier: replica assignments recorded by the
	// drained mirrors must be visible to the promotion scan.
	r.drainMirrors()
	t = r.table.Load()
	type flip struct {
		sid string
		to  string
	}
	var flips []flip
	var lost, reReplica []string
	deadB, deadReachable := t.Backend(dead)
	t.EachSession(func(sid string, e placement.Entry) {
		if e.Replica == dead {
			// The session's standby died; survivors need a new one.
			reReplica = append(reReplica, sid)
		}
		if e.Shard != dead {
			return
		}
		replica := e.Replica
		usable := replica != "" && replica != dead && t.HasBackend(replica) && !t.IsDead(replica)
		if usable {
			if deadReachable {
				// Best-effort self-fence of the (probably gone, possibly
				// zombie) primary: if it still answers, its copy refuses
				// every straggler publish from here on, so nothing lands
				// there during the promotion window.
				var fr merge.FenceReply
				deadB.Fence(merge.FenceArgs{SessionID: sid}, &fr)
				obs.Emit(obs.EventFence, dead, sid, 0, "self-fence deposed primary")
			}
			rb, _ := t.Backend(replica)
			var pr merge.PromoteReply
			if err := rb.Promote(merge.PromoteArgs{SessionID: sid}, &pr); err == nil && pr.Found {
				flips = append(flips, flip{sid: sid, to: replica})
				promoted = append(promoted, sid)
				obs.Emit(obs.EventPromote, replica, sid, 0,
					fmt.Sprintf("epoch %d fenced below %d", pr.Epoch, pr.PrevEpoch))
				return
			}
		}
		lost = append(lost, sid)
		obs.Emit(obs.EventEviction, dead, sid, 0, "no usable replica; state lost")
	})
	sort.Strings(promoted)
	sort.Strings(lost)
	r.table.Update(func(m *placement.Table[Backend]) bool {
		did := false
		for _, f := range flips {
			if e, ok := m.Lookup(f.sid); ok && e.Shard == dead {
				// Pinned like a balancer move: ring edits must not bounce
				// a failed-over session around while its old home is down.
				m.Place(f.sid, f.to, true)
				m.SetReplica(f.sid, "")
				did = true
			}
		}
		for _, sid := range lost {
			if e, ok := m.Lookup(sid); ok && e.Shard == dead {
				m.Evict(sid)
				did = true
			}
		}
		for _, sid := range reReplica {
			if e, ok := m.Lookup(sid); ok && e.Replica == dead {
				m.SetReplica(sid, "")
				did = true
			}
		}
		return did
	})
	r.promotions.Add(int64(len(promoted)))
	obsPromotions.Add(int64(len(promoted)))
	// Re-protect: promoted sessions and survivors whose replica died get
	// a fresh replica, seeded now rather than on their next publish —
	// a finished session never publishes again, and it must not ride out
	// the next failure unreplicated.
	reseed := append(append([]string(nil), promoted...), reReplica...)
	for _, sid := range reseed {
		cur := r.table.Load()
		if e, ok := cur.Lookup(sid); ok && e.Shard != dead && !cur.IsDead(e.Shard) && e.Replica == "" {
			r.assignReplica(sid, e.Shard)
		}
	}
	return lost, promoted
}

// reapRevived reconciles a revived shard's leftover session copies
// against current placement. Copies of sessions now owned elsewhere are
// tombstoned (deposed state must neither serve nor resurrect); copies
// backing a session as its recorded replica are re-baselined from the
// live primary (they went stale while the shard was down); sessions the
// table no longer places at all — evicted at death with no replica, and
// untouched since — are re-adopted, recovering their state. Caller
// holds topoMu.
func (r *Router) reapRevived(name string) {
	t := r.table.Load()
	b, ok := t.Backend(name)
	if !ok {
		return
	}
	var sl merge.SessionsReply
	if err := b.SessionList(merge.SessionsArgs{}, &sl); err != nil {
		return
	}
	var adopt []string
	for _, l := range sl.Loads {
		if l.Version == 0 {
			continue // tombstones and empty shells
		}
		e, placed := t.Lookup(l.SessionID)
		switch {
		case !placed:
			adopt = append(adopt, l.SessionID)
		case e.Shard == name:
			// Still the recorded owner — nothing re-homed it.
		case e.Replica == name:
			r.rebaseline(l.SessionID, e.Shard, name)
		default:
			var dr merge.DropReply
			b.DropSession(merge.DropArgs{SessionID: l.SessionID, Tombstone: true}, &dr)
		}
	}
	for _, sid := range adopt {
		readopted := false
		r.table.Update(func(m *placement.Table[Backend]) bool {
			if _, ok := m.Lookup(sid); ok {
				return false
			}
			m.Place(sid, name, false)
			readopted = true
			return true
		})
		if readopted {
			r.assignReplica(sid, name)
		}
	}
}

// Mirror routes a replication mirror to the session's owner — present
// so a Router satisfies the Backend interface and fabrics can stack.
func (r *Router) Mirror(args merge.MirrorArgs, reply *merge.MirrorReply) error {
	_, b, err := r.owner(args.SessionID, true)
	if err != nil {
		return err
	}
	return b.Mirror(args, reply)
}

// Promote routes a promotion to the session's owner (Backend surface).
func (r *Router) Promote(args merge.PromoteArgs, reply *merge.PromoteReply) error {
	_, b, err := r.owner(args.SessionID, false)
	if err != nil {
		return err
	}
	return b.Promote(args, reply)
}

// Fence routes a fence to the session's owner (Backend surface).
func (r *Router) Fence(args merge.FenceArgs, reply *merge.FenceReply) error {
	_, b, err := r.owner(args.SessionID, false)
	if err != nil {
		return err
	}
	return b.Fence(args, reply)
}

// ReplicaOf names the shard holding a session's standby copy ("" when
// none is assigned) — surfaced through session status.
func (r *Router) ReplicaOf(sessionID string) string {
	if e, ok := r.table.Load().Lookup(sessionID); ok {
		return e.Replica
	}
	return ""
}

// Epoch reports a session's incarnation stamp from its owning shard (0
// when unknown) — surfaced through session status so operators can see
// a failover happened.
func (r *Router) Epoch(sessionID string) int64 {
	var reply merge.StatsReply
	if _, b, err := r.owner(sessionID, false); err == nil {
		b.Stats(merge.StatsArgs{SessionID: sessionID}, &reply)
	}
	return reply.Epoch
}
