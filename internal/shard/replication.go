// Replication: per-session redundancy over the machinery the fabric
// already has, generalized from one standby to a chain of K replicas
// (primary → r1 → … → rK). The router mirrors every accepted publish —
// the same generation-stamped delta, seq and all — down the chain in
// order, so each hop holds an Export/Import-compatible standby copy
// that re-baselines on NeedFull exactly like any transport. When the
// health prober declares the primary dead, the deepest caught-up
// replica (max epoch, then max version, then deepest hop) is promoted
// under a bumped session epoch — first inheriting the dead primary's
// WAL tail when one is on disk — the placement table flips atomically,
// the remaining chain members are fenced against the dead incarnation's
// epoch, and the chain is eagerly rebuilt back to depth K from the
// survivors. A zombie shard can neither accept straggler publishes
// (they draw NeedFull until routing flips) nor resurrect stale state
// through a racing re-baseline. Clients full-resync on the epoch stamp
// they already honor.

package shard

import (
	"fmt"
	"sort"

	"github.com/ipa-grid/ipa/internal/aida"
	"github.com/ipa-grid/ipa/internal/merge"
	"github.com/ipa-grid/ipa/internal/obs"
	"github.com/ipa-grid/ipa/internal/shard/placement"
)

// mirrorJob is one queued mirror: an accepted publish (with the epoch
// and version its accept carried) bound for the session's replica
// chain. A job with a non-nil barrier is a drain sentinel instead.
type mirrorJob struct {
	primary string
	args    merge.PublishArgs
	epoch   int64
	version int64
	barrier chan struct{}
}

// mirrorQueueDepth bounds the in-flight mirror backlog; a full queue
// blocks publishes (backpressure) rather than dropping or reordering.
const mirrorQueueDepth = 256

// enqueueMirror hands an accepted publish to the mirror worker. The
// mirror stream is asynchronous — the publish path pays one channel
// send, not a second apply — but strictly ordered: one worker drains
// the queue FIFO, so per-session seq order is preserved, and failover
// flushes the queue (drainMirrors) before promoting, so a quiesced
// session's replicas have every accepted delta by the time one is asked
// to take over. A full queue blocks the publish (backpressure) and is
// no longer invisible: the occurrence counts, and the episode emits one
// fabric event.
func (r *Router) enqueueMirror(primary string, args merge.PublishArgs, reply *merge.PublishReply) {
	job := mirrorJob{
		primary: primary, args: args, epoch: reply.Epoch, version: reply.Version,
	}
	q := r.mirrorQueue()
	select {
	case q <- job:
		return
	default:
	}
	obsMirrorBackpressure.Inc()
	if r.backpressured.CompareAndSwap(false, true) {
		obs.Emit(obs.EventBackpressure, primary, args.SessionID, args.Trace.TraceID,
			fmt.Sprintf("mirror queue full (%d); publish blocked", mirrorQueueDepth))
	}
	q <- job
	r.backpressured.Store(false)
}

// mirrorQueue lazily starts the mirror worker (replicating routers
// only; it lives for the router's lifetime).
func (r *Router) mirrorQueue() chan mirrorJob {
	r.mirrorMu.Lock()
	defer r.mirrorMu.Unlock()
	if r.mirrorQ == nil {
		r.mirrorQ = make(chan mirrorJob, mirrorQueueDepth)
		go r.mirrorLoop(r.mirrorQ)
	}
	return r.mirrorQ
}

func (r *Router) mirrorLoop(q chan mirrorJob) {
	for job := range q {
		if job.barrier != nil {
			close(job.barrier)
			continue
		}
		r.mirror(job.primary, job.args, job.epoch, job.version)
	}
}

// drainMirrors blocks until every mirror enqueued before the call has
// been applied — the barrier failover takes before promoting replicas.
func (r *Router) drainMirrors() {
	r.mirrorMu.Lock()
	q := r.mirrorQ
	r.mirrorMu.Unlock()
	if q == nil {
		return
	}
	done := make(chan struct{})
	q <- mirrorJob{barrier: done}
	<-done
}

// depthWanted is the configured chain length K (at least 1).
func (r *Router) depthWanted() int {
	if r.ReplicaDepth < 1 {
		return 1
	}
	return r.ReplicaDepth
}

// chainUsable filters a recorded chain down to hops that can accept a
// mirror right now: live, registered, not the primary.
func chainUsable(t *placement.Table[Backend], primary string, chain []string) []string {
	out := chain
	for i, h := range chain {
		if h == "" || h == primary || !t.HasBackend(h) || t.IsDead(h) {
			// First unusable hop: switch to a filtered copy.
			out = append([]string(nil), chain[:i]...)
			for _, rest := range chain[i+1:] {
				if rest != "" && rest != primary && t.HasBackend(rest) && !t.IsDead(rest) {
					out = append(out, rest)
				}
			}
			break
		}
	}
	return out
}

func sameChain(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mirror forwards one accepted publish down the session's replica
// chain, repairing the chain first if any hop is unusable or the chain
// is short of depth K. Mirror failures are absorbed per hop: a missed
// delta leaves a seq gap the next mirror detects, and NeedFull answers
// trigger a full re-baseline from the hop's predecessor — replication
// self-heals through the same resync contract the publish path uses,
// and the primary's accept is never rolled back.
func (r *Router) mirror(primary string, args merge.PublishArgs, epoch, version int64) {
	t := r.table.Load()
	e, ok := t.Lookup(args.SessionID)
	if !ok || e.Shard != primary {
		return
	}
	chain := e.Replicas
	usable := chainUsable(t, primary, chain)
	if !sameChain(usable, chain) || len(usable) < min(r.depthWanted(), t.MaxChainDepth()) {
		// First touch (or a hop is gone): repair the chain, then fall
		// through and mirror this delta to it. The delta stream must not
		// be dropped on assignment — a session's first delta is its full
		// baseline, so the stream alone can bootstrap a standby even when
		// the primary dies before the seeding Export/Import ever
		// succeeds.
		chain = r.ensureChain(args.SessionID, primary)
		t = r.table.Load()
	} else {
		chain = usable
	}
	if len(chain) == 0 {
		return
	}
	delta := args.Delta
	if delta == nil {
		// Legacy whole-tree publish (the ablation baseline): forward it
		// as the full baseline it is.
		delta = &aida.DeltaState{Full: true, Entries: args.Tree.Entries}
	}
	// Walk the chain: each hop is one trace hop deeper than the last,
	// and a failed hop re-baselines from the nearest healthy predecessor
	// (the primary for hop 0) without stopping the walk.
	trace := args.Trace
	lastGood := primary
	for _, hop := range chain {
		trace = trace.NextHop()
		hb, ok := t.Backend(hop)
		if !ok {
			continue
		}
		margs := merge.MirrorArgs{
			SessionID: args.SessionID, WorkerID: args.WorkerID, Seq: args.Seq,
			Epoch: epoch, Version: version, Delta: delta,
			EventsDone: args.EventsDone, EventsTotal: args.EventsTotal, Log: args.Log,
			// Forward the publish's trace so each replica hop joins the
			// same trace the engine started.
			Trace: trace,
		}
		var mr merge.MirrorReply
		if err := hb.Mirror(margs, &mr); err != nil || mr.NeedFull {
			r.rebaseline(args.SessionID, lastGood, hop)
			continue
		}
		if mr.Accepted {
			r.mirrored.Add(1)
			obsMirrored.Inc()
		}
		lastGood = hop
	}
}

// ensureChain prunes a session's chain of unusable hops and extends it
// to depth K (capped by the fabric's live-shard count) with ring
// successors, recording the result in the placement table and seeding
// each newly added hop from its predecessor (best-effort: a failed seed
// is healed by the mirror stream's own NeedFull re-baseline, or by the
// stream itself when it starts with a full delta). Returns the chain as
// recorded, nil when the session moved or the fabric has no second live
// shard.
func (r *Router) ensureChain(sessionID, primary string) []string {
	var chain, added, preds []string
	r.table.Update(func(m *placement.Table[Backend]) bool {
		chain, added, preds = nil, nil, nil
		e, ok := m.Lookup(sessionID)
		if !ok || e.Shard != primary {
			return false
		}
		kept := chainUsable(m, primary, e.Replicas)
		desired := min(r.depthWanted(), m.MaxChainDepth())
		for len(kept) < desired {
			next := m.ReplicaHome(sessionID, primary, kept)
			if next == "" {
				break
			}
			pred := primary
			if len(kept) > 0 {
				pred = kept[len(kept)-1]
			}
			added = append(added, next)
			preds = append(preds, pred)
			kept = append(kept, next)
		}
		chain = kept
		if sameChain(kept, e.Replicas) {
			return false
		}
		m.SetReplicas(sessionID, kept)
		return true
	})
	for i, hop := range added {
		obs.Emit(obs.EventReplicate, hop, sessionID, 0,
			fmt.Sprintf("chain hop %d seeded from %s", len(chain)-len(added)+i+1, preds[i]))
		r.rebaseline(sessionID, preds[i], hop)
	}
	return chain
}

// rebaseline copies a session's full state from one shard to another
// (Export without seal → Import) — how a replica catches up after a
// miss, a gap, or first assignment. Serialized so NeedFull bursts
// cannot storm a shard with concurrent exports; mirrors racing the copy
// resolve through the seq machinery (a delta the export already covers
// is dropped as stale, a delta it misses gaps and re-baselines again).
func (r *Router) rebaseline(sessionID, from, to string) error {
	r.replMu.Lock()
	defer r.replMu.Unlock()
	t := r.table.Load()
	fb, okF := t.Backend(from)
	tb, okT := t.Backend(to)
	if !okF || !okT {
		return nil
	}
	var exp merge.ExportReply
	if err := fb.Export(merge.ExportArgs{SessionID: sessionID}, &exp); err != nil {
		return err
	}
	if !exp.Found {
		return nil
	}
	var ir merge.ImportReply
	return tb.Import(merge.ImportArgs{
		SessionID: sessionID, Version: exp.Version, Epoch: exp.Epoch,
		Workers: exp.Workers, Removed: exp.Removed, Logs: exp.Logs,
		LastTraceID: exp.LastTraceID,
	}, &ir)
}

// failover handles a shard death with replication on: every session the
// dead shard owned is promoted on its deepest caught-up replica
// (replaying the dead primary's WAL tail into it first when a WALTail
// hook is wired, and fencing both the dead incarnation and the
// not-chosen chain members) or, with no usable replica, evicted as
// before. Caller holds topoMu; t is the table that recorded the death.
func (r *Router) failover(t *placement.Table[Backend], dead string) (evicted, promoted []string) {
	// Flush the asynchronous mirror stream first: every delta the dead
	// primary accepted before it died is on the replicas before any of
	// them is promoted. (A publish racing the flip enqueues later, with
	// the dead incarnation's epoch — the replicas answer NeedFull and
	// the stream re-baselines; nothing stale sticks.) The table is
	// re-read after the barrier: chain repairs recorded by the drained
	// mirrors must be visible to the promotion scan.
	r.drainMirrors()
	t = r.table.Load()
	type flip struct {
		sid       string
		to        string
		survivors []string // chain members not chosen, in chain order
	}
	var flips []flip
	var lost, reChain []string
	deadB, deadReachable := t.Backend(dead)
	t.EachSession(func(sid string, e placement.Entry) {
		if e.Shard != dead {
			if e.HasReplica(dead) {
				// One of the session's standbys died; survivors need the
				// chain rebuilt.
				reChain = append(reChain, sid)
			}
			return
		}
		usable := chainUsable(t, dead, e.Replicas)
		if len(usable) > 0 {
			if deadReachable {
				// Best-effort self-fence of the (probably gone, possibly
				// zombie) primary: if it still answers, its copy refuses
				// every straggler publish from here on, so nothing lands
				// there during the promotion window.
				var fr merge.FenceReply
				deadB.Fence(merge.FenceArgs{SessionID: sid}, &fr)
				obs.Emit(obs.EventFence, dead, sid, 0, "self-fence deposed primary")
			}
			// Try the deepest caught-up hop first; if it cannot take over
			// (it died mid-failover, or its copy is an empty shell), fall
			// back to the next-best candidate rather than declaring the
			// session lost while healthy copies remain — the multi-failure
			// case a chaos schedule's mid-failover kill exercises.
			candidates := usable
			for len(candidates) > 0 {
				chosen := r.pickCaughtUp(t, sid, candidates)
				if r.WALTail != nil {
					// Hand the promoted copy the dead primary's durable log
					// tail: deltas the primary accepted and fsynced but the
					// asynchronous mirror stream never delivered.
					if n, err := r.WALTail(dead, sid, chosen); err == nil && n > 0 {
						obsWALTails.Inc()
						obs.Emit(obs.EventWALTail, chosen, sid, 0,
							fmt.Sprintf("replayed %d records from %s's log", n, dead))
					}
				}
				cb, okC := t.Backend(chosen)
				var pr merge.PromoteReply
				if okC {
					if err := cb.Promote(merge.PromoteArgs{SessionID: sid}, &pr); err == nil && pr.Found {
						survivors := make([]string, 0, len(usable)-1)
						for _, h := range usable {
							if h != chosen {
								survivors = append(survivors, h)
							}
						}
						// Fence the not-chosen chain members at the deposed
						// incarnation's epoch: their copies are stale the moment
						// the promotion bumps the epoch, and nothing may serve or
						// resurrect them until the new primary re-baselines each
						// one (Imports stamped with the new epoch clear the floor).
						for _, h := range survivors {
							if hb, ok := t.Backend(h); ok {
								var fr merge.FenceReply
								hb.Fence(merge.FenceArgs{SessionID: sid, Epoch: pr.PrevEpoch}, &fr)
								obs.Emit(obs.EventFence, h, sid, 0,
									fmt.Sprintf("chain member fenced below %d pending re-baseline", pr.PrevEpoch))
							}
						}
						flips = append(flips, flip{sid: sid, to: chosen, survivors: survivors})
						promoted = append(promoted, sid)
						obs.Emit(obs.EventPromote, chosen, sid, 0,
							fmt.Sprintf("epoch %d fenced below %d (deepest caught-up of %d)", pr.Epoch, pr.PrevEpoch, len(usable)))
						return
					}
				}
				next := make([]string, 0, len(candidates)-1)
				for _, h := range candidates {
					if h != chosen {
						next = append(next, h)
					}
				}
				candidates = next
			}
		}
		lost = append(lost, sid)
		obs.Emit(obs.EventEviction, dead, sid, 0, "no usable replica; state lost")
	})
	sort.Strings(promoted)
	sort.Strings(lost)
	r.table.Update(func(m *placement.Table[Backend]) bool {
		did := false
		for _, f := range flips {
			if e, ok := m.Lookup(f.sid); ok && e.Shard == dead {
				// Pinned like a balancer move: ring edits must not bounce
				// a failed-over session around while its old home is down.
				m.Place(f.sid, f.to, true)
				m.SetReplicas(f.sid, f.survivors)
				did = true
			}
		}
		for _, sid := range lost {
			if e, ok := m.Lookup(sid); ok && e.Shard == dead {
				m.Evict(sid)
				did = true
			}
		}
		for _, sid := range reChain {
			if e, ok := m.Lookup(sid); ok && e.HasReplica(dead) {
				m.DropReplica(sid, dead)
				did = true
			}
		}
		return did
	})
	r.promotions.Add(int64(len(promoted)))
	obsPromotions.Add(int64(len(promoted)))
	// Re-protect: promoted sessions re-baseline their fenced survivors
	// from the new primary and extend back to depth K; survivors whose
	// chain lost a member get it rebuilt — seeded now rather than on
	// their next publish, because a finished session never publishes
	// again, and it must not ride out the next failure underprotected.
	for _, f := range flips {
		for _, h := range f.survivors {
			r.rebaseline(f.sid, f.to, h)
		}
	}
	reseed := append(append([]string(nil), promoted...), reChain...)
	for _, sid := range reseed {
		cur := r.table.Load()
		if e, ok := cur.Lookup(sid); ok && e.Shard != dead && !cur.IsDead(e.Shard) {
			r.ensureChain(sid, e.Shard)
		}
	}
	return lost, promoted
}

// pickCaughtUp chooses the chain hop to promote: among the usable hops,
// the one with the highest epoch, then the highest version, then the
// deepest chain position (iteration order breaks ties toward depth —
// the hop that heard the stream last still accepted everything its
// predecessors did, and deeper copies are the ones a mid-rebuild
// failure would otherwise strand). Hops whose Stats fail are still
// eligible as a last resort — Promote on an empty shell answers !Found
// and the session is declared lost by the caller.
func (r *Router) pickCaughtUp(t *placement.Table[Backend], sid string, usable []string) string {
	chosen := usable[0]
	var bestEpoch, bestVersion int64 = -1, -1
	for _, h := range usable {
		hb, ok := t.Backend(h)
		if !ok {
			continue
		}
		var st merge.StatsReply
		if err := hb.Stats(merge.StatsArgs{SessionID: sid}, &st); err != nil || !st.Found || st.Version == 0 {
			continue
		}
		if st.Epoch > bestEpoch || (st.Epoch == bestEpoch && st.Version >= bestVersion) {
			chosen, bestEpoch, bestVersion = h, st.Epoch, st.Version
		}
	}
	return chosen
}

// reapRevived reconciles a revived shard's leftover session copies
// against current placement. Copies of sessions now owned elsewhere are
// tombstoned (deposed state must neither serve nor resurrect); copies
// backing a session as a recorded chain member are re-baselined from
// the live primary (they went stale while the shard was down); sessions
// the table no longer places at all — evicted at death with no replica,
// and untouched since — are re-adopted, recovering their state. Caller
// holds topoMu.
func (r *Router) reapRevived(name string) {
	t := r.table.Load()
	b, ok := t.Backend(name)
	if !ok {
		return
	}
	var sl merge.SessionsReply
	if err := b.SessionList(merge.SessionsArgs{}, &sl); err != nil {
		return
	}
	var adopt []string
	for _, l := range sl.Loads {
		if l.Version == 0 {
			continue // tombstones and empty shells
		}
		e, placed := t.Lookup(l.SessionID)
		switch {
		case !placed:
			adopt = append(adopt, l.SessionID)
		case e.Shard == name:
			// Still the recorded owner — nothing re-homed it.
		case e.HasReplica(name):
			r.rebaseline(l.SessionID, e.Shard, name)
		default:
			var dr merge.DropReply
			b.DropSession(merge.DropArgs{SessionID: l.SessionID, Tombstone: true}, &dr)
		}
	}
	for _, sid := range adopt {
		readopted := false
		r.table.Update(func(m *placement.Table[Backend]) bool {
			if _, ok := m.Lookup(sid); ok {
				return false
			}
			m.Place(sid, name, false)
			readopted = true
			return true
		})
		if readopted {
			r.ensureChain(sid, name)
		}
	}
}

// Mirror routes a replication mirror to the session's owner — present
// so a Router satisfies the Backend interface and fabrics can stack.
func (r *Router) Mirror(args merge.MirrorArgs, reply *merge.MirrorReply) error {
	_, b, err := r.owner(args.SessionID, true)
	if err != nil {
		return err
	}
	return b.Mirror(args, reply)
}

// Promote routes a promotion to the session's owner (Backend surface).
func (r *Router) Promote(args merge.PromoteArgs, reply *merge.PromoteReply) error {
	_, b, err := r.owner(args.SessionID, false)
	if err != nil {
		return err
	}
	return b.Promote(args, reply)
}

// Fence routes a fence to the session's owner (Backend surface).
func (r *Router) Fence(args merge.FenceArgs, reply *merge.FenceReply) error {
	_, b, err := r.owner(args.SessionID, false)
	if err != nil {
		return err
	}
	return b.Fence(args, reply)
}

// ReplicaOf names the shard holding a session's first standby copy (""
// when none is assigned) — surfaced through session status.
func (r *Router) ReplicaOf(sessionID string) string {
	if e, ok := r.table.Load().Lookup(sessionID); ok {
		return e.Replica()
	}
	return ""
}

// ReplicasOf returns a session's replica chain in order (nil when none
// is assigned) — surfaced through session status and /fabric/status.
func (r *Router) ReplicasOf(sessionID string) []string {
	if e, ok := r.table.Load().Lookup(sessionID); ok && len(e.Replicas) > 0 {
		return append([]string(nil), e.Replicas...)
	}
	return nil
}

// Epoch reports a session's incarnation stamp from its owning shard (0
// when unknown) — surfaced through session status so operators can see
// a failover happened.
func (r *Router) Epoch(sessionID string) int64 {
	var reply merge.StatsReply
	if _, b, err := r.owner(sessionID, false); err == nil {
		b.Stats(merge.StatsArgs{SessionID: sessionID}, &reply)
	}
	return reply.Epoch
}
