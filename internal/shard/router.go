// Package shard turns the single AIDA merge manager into a horizontally
// scalable fabric: sessions are spread across multiple merge.Manager
// shards by consistent hashing on the session ID, behind a Router that
// speaks exactly the surface one Manager spoke — engines, SubMergers,
// polling clients, and the session service cannot tell the difference.
//
// The paper's architecture funnels every session's publishes and polls
// through one mediator, the ceiling DIAL's distributed-scheduler design
// warns about for interactive analysis at scale. Here the root tier
// becomes N managers (in-process or behind RMI on other nodes), an
// immutable placement table (internal/shard/placement) assigns each
// session a home shard, and ring changes migrate live sessions with no
// lost updates: the old owner is sealed and exported, the dump is
// imported into the new owner as a baseline at the same version,
// routing flips, and any publish that raced the move is answered
// NeedFull so its producer re-baselines on the new shard.
//
// Placement is a subsystem of its own (ablation A11): routing reads are
// lock-free RCU loads of the placement table (LockedRouting retains the
// old mutex-per-call baseline), a Balancer migrates the hottest
// sessions off overloaded shards by observed publish+poll rates, and a
// Health prober marks unreachable shards dead so their sessions re-home
// lazily from their engines' next re-baseline.
package shard

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ipa-grid/ipa/internal/merge"
	"github.com/ipa-grid/ipa/internal/obs"
	"github.com/ipa-grid/ipa/internal/shard/placement"
)

// Backend is one merge shard as the router sees it: the engine/client
// RPC triple plus the handoff and bookkeeping calls. *merge.Manager
// implements it directly (an in-process shard); Remote implements it
// over an rmi.Client for shards on other nodes.
type Backend interface {
	Publish(args merge.PublishArgs, reply *merge.PublishReply) error
	PublishBatch(args merge.PublishBatchArgs, reply *merge.PublishBatchReply) error
	Poll(args merge.PollArgs, reply *merge.PollReply) error
	Reset(args merge.ResetArgs, reply *merge.ResetReply) error
	Flush(args merge.FlushArgs, reply *merge.FlushReply) error
	Export(args merge.ExportArgs, reply *merge.ExportReply) error
	Import(args merge.ImportArgs, reply *merge.ImportReply) error
	Stats(args merge.StatsArgs, reply *merge.StatsReply) error
	Seal(args merge.SealArgs, reply *merge.SealReply) error
	DropSession(args merge.DropArgs, reply *merge.DropReply) error
	SessionList(args merge.SessionsArgs, reply *merge.SessionsReply) error
	// Replication surface (PR 6): Mirror feeds a standby copy, Promote
	// makes it live under a bumped epoch, Fence refuses a deposed
	// incarnation's stragglers.
	Mirror(args merge.MirrorArgs, reply *merge.MirrorReply) error
	Promote(args merge.PromoteArgs, reply *merge.PromoteReply) error
	Fence(args merge.FenceArgs, reply *merge.FenceReply) error
}

// ReadBackend is the read-only surface a relay tier exposes to the
// router: just Poll. Relays never own sessions, so they need none of
// the write/handoff surface a full Backend carries.
type ReadBackend interface {
	Poll(args merge.PollArgs, reply *merge.PollReply) error
}

// ErrNoShards rejects routing on an empty fabric (or one whose every
// shard is marked dead).
var ErrNoShards = errors.New("shard: router has no shards")

// Router fronts a set of Manager shards behind the single-manager
// surface (merge.Service plus the handoff RPCs). Every call is routed
// to the session's home shard, assigned by the consistent-hash ring on
// first touch and moved only by explicit handoff or fault eviction, so
// a ring edit never silently strands a live session's state on its old
// owner.
//
// The RPC methods (Publish/Poll/Reset) have RMI-compatible signatures:
// registering the Router on an rmi.Server under the AIDA manager's name
// gives remote engines and clients a sharded fabric transparently.
//
// Safe for concurrent use. Routing is lock-free: it loads the current
// placement table (one atomic pointer read) and resolves the owner from
// immutable maps, so any number of publishes and polls resolve
// concurrently and a slow shard or a topology edit never stalls the
// fabric. Only topology edits, first-touch placements, rebalance
// flips, and fault evictions take the write path (clone-and-swap under
// the store mutex). Handoffs (AddShard/RemoveShard/MoveSession) run
// concurrently with traffic: a publish that races the migration lands
// on the sealed old owner, is answered NeedFull, and its producer
// re-baselines on the new owner — nothing is lost and nothing is
// double-merged.
type Router struct {
	// LockedRouting serializes every owner resolution behind one mutex —
	// the pre-A11 behavior, retained as the ablation baseline. Set
	// before first use.
	LockedRouting bool
	lockedMu      sync.Mutex

	// Replicate mirrors every accepted publish to a per-session replica
	// chain and turns shard-death handling from lossy eviction into
	// epoch-fenced promotion of the deepest caught-up replica. Off by
	// default — the DisableReplication baseline is exactly the PR 5
	// behavior. Set before first use.
	Replicate bool
	// ReplicaDepth is the target chain length K (primary → r1 → … → rK).
	// Zero or negative means 1 — the PR 6 single-standby behavior.
	// Chains are silently capped at the fabric's live-shard count minus
	// one. Set before first use.
	ReplicaDepth int
	// WALTail, when set, replays a dead primary's on-disk write-ahead
	// log for one session into the replica about to be promoted, so the
	// promoted copy inherits every delta the primary durably logged —
	// including ones the asynchronous mirror stream never delivered.
	// Called as WALTail(deadShard, sessionID, targetShard); returns the
	// number of records applied. Best-effort: errors only mean the
	// promoted copy starts from the mirror stream's high-water mark.
	WALTail func(deadShard, sessionID, targetShard string) (int, error)
	// replMu serializes replica re-baselines (Export→Import copies) so
	// a burst of NeedFull answers cannot storm a shard.
	replMu sync.Mutex
	// mirrorMu guards the lazy start of the mirror worker; the queue
	// itself orders the asynchronous mirror stream (see enqueueMirror).
	mirrorMu sync.Mutex
	mirrorQ  chan mirrorJob
	// backpressured marks an in-progress mirror-queue backpressure
	// episode so the fabric event fires once per episode, not once per
	// blocked publish (the counter records every occurrence).
	backpressured atomic.Bool

	// RelayReads routes client polls of placed sessions through the
	// registered relay tier (read-only mirrors that subscribe once to
	// the owner's delta stream and re-serve any number of pollers).
	// Writes always go to the primary. Off by default — the
	// DisableRelay baseline is direct owner polling. Set before first
	// use.
	RelayReads bool
	// relayHandles maps relay name → its locally reachable read
	// surface. Registration data (names, endpoints, the relay ring)
	// lives in the placement table; the handles stay here so the table
	// needs no second type parameter.
	relayHandles sync.Map

	table      *placement.Store[Backend]
	handoffs   atomic.Int64
	promotions atomic.Int64
	mirrored   atomic.Int64

	// topoMu serializes topology edits (and their handoffs) against each
	// other without blocking routing.
	topoMu sync.Mutex
}

// NewRouter creates an empty router (vnodes <= 0 selects the default
// virtual-node count).
func NewRouter(vnodes int) *Router {
	return &Router{table: placement.NewStore[Backend](vnodes)}
}

// Table exposes the current placement snapshot (diagnostics, balancer,
// health prober). Treat it as read-only.
func (r *Router) Table() *placement.Table[Backend] { return r.table.Load() }

// Generation is the placement table's generation stamp: it bumps on
// every topology edit, first-touch placement, rebalance move, or fault
// eviction — surfaced through session status so clients can tell the
// fabric changed under them.
func (r *Router) Generation() uint64 { return r.table.Load().Gen() }

// owner resolves the home shard of a session with no locks: one atomic
// load of the placement table, then plain map reads. Only the publish
// path records a first-touch placement (mirroring the Manager's rule
// that read-only RPCs never allocate state): an unplaced session's
// reads route by ring position, which is exactly where a later publish
// would place it.
func (r *Router) owner(sessionID string, place bool) (string, Backend, error) {
	if r.LockedRouting {
		r.lockedMu.Lock()
		defer r.lockedMu.Unlock()
	}
	t := r.table.Load()
	if e, ok := t.Lookup(sessionID); ok {
		return backendOf(t, sessionID, e.Shard)
	}
	if !place {
		home := t.Home(sessionID)
		if home == "" {
			return "", nil, ErrNoShards
		}
		return backendOf(t, sessionID, home)
	}
	// First-touch publish: record the placement. This is the only read
	// that takes the write path, once per session lifetime — the edit
	// re-resolves inside the store lock so a racing topology change or a
	// concurrent first touch cannot double-place.
	var home string
	t = r.table.Update(func(m *placement.Table[Backend]) bool {
		if e, ok := m.Lookup(sessionID); ok {
			home = e.Shard
			return false
		}
		home = m.Home(sessionID)
		if home == "" {
			return false
		}
		m.Place(sessionID, home, false)
		return true
	})
	if home == "" {
		return "", nil, ErrNoShards
	}
	return backendOf(t, sessionID, home)
}

func backendOf(t *placement.Table[Backend], sessionID, shard string) (string, Backend, error) {
	b, ok := t.Backend(shard)
	if !ok {
		return "", nil, fmt.Errorf("shard: session %s routed to unknown shard %q", sessionID, shard)
	}
	return shard, b, nil
}

// Publish routes an engine/SubMerger snapshot to the session's shard
// (RMI-compatible).
func (r *Router) Publish(args merge.PublishArgs, reply *merge.PublishReply) error {
	name, b, err := r.owner(args.SessionID, true)
	if err != nil {
		return err
	}
	if !obs.Disabled() {
		shardCall(name, "publish").Inc()
	}
	if err := b.Publish(args, reply); err != nil {
		return err
	}
	if r.Replicate && reply.Accepted {
		r.enqueueMirror(name, args, reply)
	}
	return nil
}

// Poll routes a client update request (RMI-compatible). With
// RelayReads on, placed sessions are served by their assigned read
// relay — the owner shard sees one subscription stream instead of
// every viewer's round-trip; everything else (relay off, unplaced
// session, relay not locally reachable) polls the owner.
func (r *Router) Poll(args merge.PollArgs, reply *merge.PollReply) error {
	if r.RelayReads {
		if name, rb := r.relayFor(args.SessionID); rb != nil {
			if !obs.Disabled() {
				obsRelayPolls.Inc()
				shardCall("relay/"+name, "poll").Inc()
			}
			return rb.Poll(args, reply)
		}
	}
	return r.PollOwner(args, reply)
}

// PollOwner routes a read to the session's owning shard, bypassing the
// relay tier — the subscription path the relays themselves poll
// through (a relay read must never route back into the relay tier).
func (r *Router) PollOwner(args merge.PollArgs, reply *merge.PollReply) error {
	name, b, err := r.owner(args.SessionID, false)
	if err != nil {
		return err
	}
	if !obs.Disabled() {
		shardCall(name, "poll").Inc()
	}
	return b.Poll(args, reply)
}

// relayFor resolves the relay handle serving a session's reads (nil
// when the session is unplaced, no relay is registered, or the
// assigned relay has no local handle). Unplaced sessions stay on the
// owner path: a stray read must not open a relay subscription for a
// session that may never exist.
func (r *Router) relayFor(sessionID string) (string, ReadBackend) {
	t := r.table.Load()
	if _, ok := t.Lookup(sessionID); !ok {
		return "", nil
	}
	name := t.RelayHome(sessionID)
	if name == "" {
		return "", nil
	}
	if v, ok := r.relayHandles.Load(name); ok {
		return name, v.(ReadBackend)
	}
	return "", nil
}

// OriginPoller is the router's relay-bypassing read surface — what a
// relay's upstream subscription polls through.
type OriginPoller struct{ r *Router }

// Poll implements relay-tier Poller against the owning shard.
func (p OriginPoller) Poll(args merge.PollArgs, reply *merge.PollReply) error {
	return p.r.PollOwner(args, reply)
}

// OriginPoller returns the relay-bypassing read surface.
func (r *Router) OriginPoller() OriginPoller { return OriginPoller{r} }

// AddRelay registers a read relay: its handle for local routing and
// its name in the placement table's relay ring (which assigns each
// session a home relay deterministically).
func (r *Router) AddRelay(name string, rb ReadBackend) error {
	if name == "" || rb == nil {
		return errors.New("shard: AddRelay needs a name and a backend")
	}
	if _, loaded := r.relayHandles.LoadOrStore(name, rb); loaded {
		return fmt.Errorf("shard: relay %q already present", name)
	}
	r.table.Update(func(m *placement.Table[Backend]) bool {
		m.AddRelay(name, "")
		return true
	})
	return nil
}

// RemoveRelay retires a relay; its sessions' reads fall back to other
// relays (or the owner when none remain).
func (r *Router) RemoveRelay(name string) {
	r.relayHandles.Delete(name)
	r.table.Update(func(m *placement.Table[Backend]) bool {
		if !m.HasRelay(name) {
			return false
		}
		m.RemoveRelay(name)
		return true
	})
}

// SetRelayAddr records the RMI endpoint whose relay.ObjectName(name)
// registration serves a relay ("" clears it). Clients learn it through
// session status and dial the relay directly for reads.
func (r *Router) SetRelayAddr(name, addr string) {
	r.table.Update(func(m *placement.Table[Backend]) bool {
		if !m.HasRelay(name) || m.RelayAddr(name) == addr {
			return false
		}
		m.SetRelayAddr(name, addr)
		return true
	})
}

// Relays lists registered relay names, sorted.
func (r *Router) Relays() []string { return r.table.Load().Relays() }

// RelayFor names the relay assigned a session's reads together with
// its advertised endpoint — both "" when relay reads are off or no
// relay is registered, sending the client to the owner instead.
func (r *Router) RelayFor(sessionID string) (name, addr string) {
	if !r.RelayReads {
		return "", ""
	}
	t := r.table.Load()
	name = t.RelayHome(sessionID)
	return name, t.RelayAddr(name)
}

// Reset routes a rewind (RMI-compatible). A rewind that races a live
// handoff hits the sealed old owner and gets ErrSealed — a transient
// the fabric expects callers to absorb, so the router absorbs it:
// re-resolve (the flip lands mid-retry) and try again briefly before
// surfacing the error.
func (r *Router) Reset(args merge.ResetArgs, reply *merge.ResetReply) error {
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		var b Backend
		if _, b, err = r.owner(args.SessionID, false); err != nil {
			return err
		}
		if err = b.Reset(args, reply); !isSealedErr(err) {
			return err
		}
		time.Sleep(10 * time.Millisecond)
	}
	return err
}

// isSealedErr matches ErrSealed locally and across RMI (where it
// arrives as a flattened RemoteError string).
func isSealedErr(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, merge.ErrSealed) || strings.Contains(err.Error(), merge.ErrSealed.Error())
}

// FlushState assembles a forwardable delta from the session's shard —
// the Manager surface SubMergers pull, so a merge tier can sit above a
// sharded fabric too. The shard's backpressure hint rides along.
func (r *Router) FlushState(sessionID string, since, logSince int64) (merge.FlushState, error) {
	_, b, err := r.owner(sessionID, false)
	if err != nil {
		return merge.FlushState{}, err
	}
	var reply merge.FlushReply
	if err := b.Flush(merge.FlushArgs{SessionID: sessionID, Since: since, LogSince: logSince}, &reply); err != nil {
		return merge.FlushState{}, err
	}
	return merge.FlushState{
		Delta: reply.Delta, Version: reply.Version,
		Done: reply.Done, Total: reply.Total, Logs: reply.Logs,
		Busy: reply.Busy, QueueDepth: reply.QueueDepth,
	}, nil
}

// Version implements merge.Service against the owning shard (0 when the
// fabric is empty or the shard unreachable).
func (r *Router) Version(sessionID string) int64 {
	var reply merge.StatsReply
	if _, b, err := r.owner(sessionID, false); err == nil {
		b.Stats(merge.StatsArgs{SessionID: sessionID}, &reply)
	}
	return reply.Version
}

// CacheStats implements merge.Service against the owning shard.
func (r *Router) CacheStats(sessionID string) (hits, misses int64) {
	var reply merge.StatsReply
	if _, b, err := r.owner(sessionID, false); err == nil {
		b.Stats(merge.StatsArgs{SessionID: sessionID}, &reply)
	}
	return reply.CacheHits, reply.CacheMisses
}

// Drop removes the session and forgets its placement. The drop is
// broadcast to every shard, not just the owner: a publish that raced a
// past handoff can have left a stray (resynced-away) session copy on a
// previous owner, and teardown is the moment to reap it.
func (r *Router) Drop(sessionID string) {
	t := r.table.Update(func(m *placement.Table[Backend]) bool {
		if _, ok := m.Lookup(sessionID); !ok {
			return false
		}
		m.Evict(sessionID)
		return true
	})
	t.EachBackend(func(_ string, b Backend) {
		var dr merge.DropReply
		b.DropSession(merge.DropArgs{SessionID: sessionID}, &dr)
	})
	// Relays mirroring the session tear down their subscription and
	// local copy too.
	r.relayHandles.Range(func(_, v any) bool {
		if d, ok := v.(interface{ Drop(string) }); ok {
			d.Drop(sessionID)
		}
		return true
	})
}

// Placement names the shard currently owning a session (by placement if
// the session is live, by ring position otherwise; "" on an empty
// fabric) — surfaced through session.Status.
func (r *Router) Placement(sessionID string) string {
	t := r.table.Load()
	if e, ok := t.Lookup(sessionID); ok {
		return e.Shard
	}
	return t.Home(sessionID)
}

// SetShardAddr records the RMI endpoint whose ObjectName(shard)
// registration serves a shard's manager ("" clears it). Heavy polling
// clients learn it through PlacementInfo and dial the owning shard
// directly, skipping the router hop on every poll.
func (r *Router) SetShardAddr(shard, addr string) {
	r.table.Update(func(m *placement.Table[Backend]) bool {
		if m.AddrEntry(shard) == addr {
			// Re-advertising the same endpoint must not bump the
			// placement generation clients watch for real changes.
			return false
		}
		m.SetAddr(shard, addr)
		return true
	})
}

// PlacementInfo names the shard currently owning a session together
// with the RMI endpoint serving it (addr "" when the shard's endpoint
// was never recorded — the client then keeps polling via the router).
// A departed shard's endpoint is cleared with the shard, so this never
// reports a stale address.
func (r *Router) PlacementInfo(sessionID string) (shard, addr string) {
	t := r.table.Load()
	if e, ok := t.Lookup(sessionID); ok {
		return e.Shard, t.Addr(e.Shard)
	}
	home := t.Home(sessionID)
	return home, t.Addr(home)
}

// Shards lists the fabric members, sorted.
func (r *Router) Shards() []string { return r.table.Load().Shards() }

// DeadShards lists the shards currently marked unreachable, sorted.
func (r *Router) DeadShards() []string { return r.table.Load().DeadShards() }

// Handoffs reports how many live-session migrations the router has
// completed across all ring edits and rebalance moves.
func (r *Router) Handoffs() int64 { return r.handoffs.Load() }

// Promotions reports how many replica promotions (epoch-fenced
// failovers) the router has completed.
func (r *Router) Promotions() int64 { return r.promotions.Load() }

// Mirrored reports how many publishes were successfully mirrored to a
// replica shard.
func (r *Router) Mirrored() int64 { return r.mirrored.Load() }

// Sessions enumerates every session the router has placed, sorted.
func (r *Router) Sessions() []string { return r.table.Load().Sessions() }

// AddShard joins a shard to the fabric and migrates to it every live
// session the new ring assigns it. The first error aborts the remaining
// migrations (already-moved sessions stay moved). A re-added shard
// starts alive even if its previous incarnation was marked dead.
func (r *Router) AddShard(name string, b Backend) error {
	if name == "" || b == nil {
		return errors.New("shard: AddShard needs a name and a backend")
	}
	r.topoMu.Lock()
	defer r.topoMu.Unlock()
	dup := false
	t := r.table.Update(func(m *placement.Table[Backend]) bool {
		if m.HasBackend(name) {
			dup = true
			return false
		}
		m.AddShard(name, b)
		return true
	})
	if dup {
		return fmt.Errorf("shard: shard %q already present", name)
	}
	return r.migrate(r.pendingMoves(t))
}

// RemoveShard retires a shard, first migrating every session it owns to
// the shard's successors on the ring. The last shard cannot be removed.
// The shard's backend, advertised endpoint, and fault mark are all
// forgotten, so PlacementInfo never reports a departed shard.
func (r *Router) RemoveShard(name string) error {
	r.topoMu.Lock()
	defer r.topoMu.Unlock()
	missing, last := false, false
	t := r.table.Update(func(m *placement.Table[Backend]) bool {
		if !m.HasBackend(name) {
			missing = true
			return false
		}
		if m.RingSize() == 1 && m.InRing(name) {
			last = true
			return false
		}
		m.RemoveFromRing(name)
		return true
	})
	if missing {
		return fmt.Errorf("shard: no shard %q", name)
	}
	if last {
		return errors.New("shard: cannot remove the last shard")
	}
	if err := r.migrate(r.pendingMoves(t)); err != nil {
		return err
	}
	r.table.Update(func(m *placement.Table[Backend]) bool {
		m.DropShard(name)
		return true
	})
	return nil
}

// MoveSession migrates one live session to a named shard regardless of
// its ring position — the balancer's primitive. The new placement is
// pinned: later ring edits leave the session where the balancer put it;
// only removing or losing its shard re-homes it.
func (r *Router) MoveSession(sessionID, to string) error {
	r.topoMu.Lock()
	defer r.topoMu.Unlock()
	t := r.table.Load()
	e, ok := t.Lookup(sessionID)
	if !ok {
		return fmt.Errorf("shard: session %s has no recorded placement", sessionID)
	}
	if e.Shard == to {
		return nil
	}
	toB, ok := t.Backend(to)
	if !ok {
		return fmt.Errorf("shard: no shard %q", to)
	}
	if t.IsDead(to) {
		return fmt.Errorf("shard: shard %q is marked dead", to)
	}
	fromB, ok := t.Backend(e.Shard)
	if !ok {
		return fmt.Errorf("shard: session %s placed on unknown shard %q", sessionID, e.Shard)
	}
	mv := move{session: sessionID, from: e.Shard, to: to, fromB: fromB, toB: toB, pin: true}
	if err := r.handoff(mv); err != nil {
		return fmt.Errorf("shard: moving session %s %s→%s: %w", sessionID, e.Shard, to, err)
	}
	return nil
}

// MarkDead declares a shard unreachable: it stays on the ring (so a
// revival needs no re-add) but stops receiving routes. What happens to
// its sessions depends on Replicate. Off (the DisableReplication
// baseline), every session placed on it is evicted from the table and
// re-homes lazily on its next touch — the new shard answers the first
// delta with NeedFull and the engines' full re-baseline rebuilds the
// state, which loses everything a finished engine will never republish.
// On, each session with a live replica is instead promoted there under
// a bumped, fenced epoch (see failover); only sessions with no usable
// replica fall back to eviction. Returns the evicted and promoted
// session IDs, both sorted.
func (r *Router) MarkDead(name string) (evicted, promoted []string) {
	r.topoMu.Lock()
	defer r.topoMu.Unlock()
	changed := false
	t := r.table.Update(func(m *placement.Table[Backend]) bool {
		if !m.HasBackend(name) || m.IsDead(name) {
			return false
		}
		m.SetDead(name, true)
		changed = true
		if !r.Replicate {
			evicted = m.EvictSessionsOn(name)
		}
		return true
	})
	if !changed || !r.Replicate {
		for _, sid := range evicted {
			obs.Emit(obs.EventEviction, name, sid, 0, "shard dead, replication off")
		}
		return evicted, nil
	}
	return r.failover(t, name)
}

// MarkAlive lifts a shard's dead mark (a recovered probe). Sessions do
// not move back — the revived shard simply rejoins the routing pool for
// ring-position resolution. With replication on, the revived shard's
// leftover session copies are reconciled against current placement
// (see reapRevived) so deposed state can never serve or resurrect.
// Reports whether anything changed.
func (r *Router) MarkAlive(name string) bool {
	r.topoMu.Lock()
	defer r.topoMu.Unlock()
	changed := false
	r.table.Update(func(m *placement.Table[Backend]) bool {
		if !m.HasBackend(name) || !m.IsDead(name) {
			return false
		}
		m.SetDead(name, false)
		changed = true
		return true
	})
	if changed && r.Replicate {
		r.reapRevived(name)
	}
	return changed
}

type move struct {
	session  string
	from, to string
	fromB    Backend
	toB      Backend
	// pin marks the destination placement as balancer-chosen (survives
	// ring edits).
	pin bool
}

// pendingMoves lists the placed sessions whose required owner differs
// from their current placement against the given table: unpinned
// sessions follow the ring; pinned ones move only when their shard left
// the ring or died (nothing else may undo a deliberate balancer move).
func (r *Router) pendingMoves(t *placement.Table[Backend]) []move {
	var moves []move
	t.EachSession(func(sid string, e placement.Entry) {
		displaced := !t.InRing(e.Shard) || t.IsDead(e.Shard)
		if e.Pinned && !displaced {
			return
		}
		want := t.Home(sid)
		if want == "" || want == e.Shard {
			return
		}
		fromB, _ := t.Backend(e.Shard)
		toB, _ := t.Backend(want)
		moves = append(moves, move{session: sid, from: e.Shard, to: want, fromB: fromB, toB: toB})
	})
	sort.Slice(moves, func(i, j int) bool { return moves[i].session < moves[j].session })
	return moves
}

func (r *Router) migrate(moves []move) error {
	for _, mv := range moves {
		if err := r.handoff(mv); err != nil {
			return fmt.Errorf("shard: moving session %s %s→%s: %w", mv.session, mv.from, mv.to, err)
		}
	}
	return nil
}

// handoff migrates one session: seal + export on the old owner, import
// into the new one at the same version, flip routing, drop the old
// copy. Publishes racing any stage either land before the seal (and are
// exported), or land sealed and draw NeedFull — the producer's next
// snapshot is a full baseline against the new owner, so its updates
// survive in the re-baseline rather than the lost delta.
func (r *Router) handoff(mv move) error {
	var exp merge.ExportReply
	if err := mv.fromB.Export(merge.ExportArgs{SessionID: mv.session, Seal: true}, &exp); err != nil {
		return fmt.Errorf("export: %w", err)
	}
	if exp.Found {
		imp := merge.ImportArgs{
			SessionID: mv.session, Version: exp.Version, Epoch: exp.Epoch,
			Workers: exp.Workers, Removed: exp.Removed, Logs: exp.Logs,
			LastTraceID: exp.LastTraceID,
		}
		var ir merge.ImportReply
		if err := mv.toB.Import(imp, &ir); err != nil {
			// Roll back: the source still holds every byte of the
			// session (export copies, it doesn't drain), so lifting the
			// seal is all recovery takes and the session keeps serving
			// from its old owner.
			var sr merge.SealReply
			if rerr := mv.fromB.Seal(merge.SealArgs{SessionID: mv.session, On: false}, &sr); rerr != nil {
				return fmt.Errorf("import: %v (unseal rollback also failed, session frozen until the shard answers: %w)", err, rerr)
			}
			return fmt.Errorf("import: %w", err)
		}
	}
	r.table.Update(func(m *placement.Table[Backend]) bool {
		if e, ok := m.Lookup(mv.session); ok && e.Shard == mv.from {
			m.Place(mv.session, mv.to, mv.pin)
			return true
		}
		return false
	})
	r.handoffs.Add(1)
	obsHandoffs.Inc()
	obs.Emit(obs.EventHandoff, mv.to, mv.session, 0, "from "+mv.from)
	// Tombstone, not delete: a racing publish that already resolved the
	// old backend must keep drawing NeedFull there, never re-create an
	// unsealed session whose accepted snapshots nobody polls. The shell
	// is reaped by the teardown Drop broadcast. Failure is benign — the
	// full sealed copy lingers until then instead.
	var dr merge.DropReply
	mv.fromB.DropSession(merge.DropArgs{SessionID: mv.session, Tombstone: true}, &dr)
	return nil
}

var (
	_ Backend         = (*merge.Manager)(nil)
	_ merge.Service   = (*Router)(nil)
	_ merge.Publisher = (*Router)(nil)
)
