package shard

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/ipa-grid/ipa/internal/merge"
)

// Backend is one merge shard as the router sees it: the engine/client
// RPC triple plus the handoff and bookkeeping calls. *merge.Manager
// implements it directly (an in-process shard); Remote implements it
// over an rmi.Client for shards on other nodes.
type Backend interface {
	Publish(args merge.PublishArgs, reply *merge.PublishReply) error
	Poll(args merge.PollArgs, reply *merge.PollReply) error
	Reset(args merge.ResetArgs, reply *merge.ResetReply) error
	Flush(args merge.FlushArgs, reply *merge.FlushReply) error
	Export(args merge.ExportArgs, reply *merge.ExportReply) error
	Import(args merge.ImportArgs, reply *merge.ImportReply) error
	Stats(args merge.StatsArgs, reply *merge.StatsReply) error
	Seal(args merge.SealArgs, reply *merge.SealReply) error
	DropSession(args merge.DropArgs, reply *merge.DropReply) error
	SessionList(args merge.SessionsArgs, reply *merge.SessionsReply) error
}

// ErrNoShards rejects routing on an empty fabric.
var ErrNoShards = errors.New("shard: router has no shards")

type route struct {
	shard string
}

// Router fronts a set of Manager shards behind the single-manager
// surface (merge.Service plus the handoff RPCs). Every call is routed
// to the session's home shard, assigned by the consistent-hash ring on
// first touch and moved only by explicit handoff, so a ring edit never
// silently strands a live session's state on its old owner.
//
// The RPC methods (Publish/Poll/Reset) have RMI-compatible signatures:
// registering the Router on an rmi.Server under the AIDA manager's name
// gives remote engines and clients a sharded fabric transparently.
//
// Safe for concurrent use. Routing holds the lock only to resolve the
// owner; the shard call itself runs unlocked, so a slow shard does not
// stall the fabric. Handoffs (AddShard/RemoveShard) run concurrently
// with traffic: a publish that races the migration lands on the sealed
// old owner, is answered NeedFull, and its producer re-baselines on the
// new owner — nothing is lost and nothing is double-merged.
type Router struct {
	mu       sync.Mutex
	ring     *Ring
	backends map[string]Backend
	place    map[string]*route // sessionID → current owner
	addrs    map[string]string // shard → RMI endpoint serving it
	handoffs int64

	// topoMu serializes ring edits (and their handoffs) against each
	// other without blocking routing.
	topoMu sync.Mutex
}

// NewRouter creates an empty router (vnodes <= 0 selects the default
// virtual-node count).
func NewRouter(vnodes int) *Router {
	return &Router{
		ring:     NewRing(vnodes),
		backends: make(map[string]Backend),
		place:    make(map[string]*route),
		addrs:    make(map[string]string),
	}
}

// owner resolves the home shard of a session. Only the publish path
// records the placement (mirroring the Manager's rule that read-only
// RPCs never allocate state): an unplaced session's reads route by ring
// position, which is exactly where a later publish would place it.
func (r *Router) owner(sessionID string, place bool) (string, Backend, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rt := r.place[sessionID]
	if rt == nil {
		home := r.ring.Owner(sessionID)
		if home == "" {
			return "", nil, ErrNoShards
		}
		rt = &route{shard: home}
		if place {
			r.place[sessionID] = rt
		}
	}
	b := r.backends[rt.shard]
	if b == nil {
		return "", nil, fmt.Errorf("shard: session %s routed to unknown shard %q", sessionID, rt.shard)
	}
	return rt.shard, b, nil
}

// Publish routes an engine/SubMerger snapshot to the session's shard
// (RMI-compatible).
func (r *Router) Publish(args merge.PublishArgs, reply *merge.PublishReply) error {
	_, b, err := r.owner(args.SessionID, true)
	if err != nil {
		return err
	}
	return b.Publish(args, reply)
}

// Poll routes a client update request (RMI-compatible).
func (r *Router) Poll(args merge.PollArgs, reply *merge.PollReply) error {
	_, b, err := r.owner(args.SessionID, false)
	if err != nil {
		return err
	}
	return b.Poll(args, reply)
}

// Reset routes a rewind (RMI-compatible). A rewind that races a live
// handoff hits the sealed old owner and gets ErrSealed — a transient
// the fabric expects callers to absorb, so the router absorbs it:
// re-resolve (the flip lands mid-retry) and try again briefly before
// surfacing the error.
func (r *Router) Reset(args merge.ResetArgs, reply *merge.ResetReply) error {
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		var b Backend
		if _, b, err = r.owner(args.SessionID, false); err != nil {
			return err
		}
		if err = b.Reset(args, reply); !isSealedErr(err) {
			return err
		}
		time.Sleep(10 * time.Millisecond)
	}
	return err
}

// isSealedErr matches ErrSealed locally and across RMI (where it
// arrives as a flattened RemoteError string).
func isSealedErr(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, merge.ErrSealed) || strings.Contains(err.Error(), merge.ErrSealed.Error())
}

// FlushState assembles a forwardable delta from the session's shard —
// the Manager surface SubMergers pull, so a merge tier can sit above a
// sharded fabric too.
func (r *Router) FlushState(sessionID string, since, logSince int64) (merge.FlushState, error) {
	_, b, err := r.owner(sessionID, false)
	if err != nil {
		return merge.FlushState{}, err
	}
	var reply merge.FlushReply
	if err := b.Flush(merge.FlushArgs{SessionID: sessionID, Since: since, LogSince: logSince}, &reply); err != nil {
		return merge.FlushState{}, err
	}
	return merge.FlushState{
		Delta: reply.Delta, Version: reply.Version,
		Done: reply.Done, Total: reply.Total, Logs: reply.Logs,
	}, nil
}

// Version implements merge.Service against the owning shard (0 when the
// fabric is empty or the shard unreachable).
func (r *Router) Version(sessionID string) int64 {
	var reply merge.StatsReply
	if _, b, err := r.owner(sessionID, false); err == nil {
		b.Stats(merge.StatsArgs{SessionID: sessionID}, &reply)
	}
	return reply.Version
}

// CacheStats implements merge.Service against the owning shard.
func (r *Router) CacheStats(sessionID string) (hits, misses int64) {
	var reply merge.StatsReply
	if _, b, err := r.owner(sessionID, false); err == nil {
		b.Stats(merge.StatsArgs{SessionID: sessionID}, &reply)
	}
	return reply.CacheHits, reply.CacheMisses
}

// Drop removes the session and forgets its placement. The drop is
// broadcast to every shard, not just the owner: a publish that raced a
// past handoff can have left a stray (resynced-away) session copy on a
// previous owner, and teardown is the moment to reap it.
func (r *Router) Drop(sessionID string) {
	r.mu.Lock()
	backends := make([]Backend, 0, len(r.backends))
	for _, b := range r.backends {
		backends = append(backends, b)
	}
	delete(r.place, sessionID)
	r.mu.Unlock()
	for _, b := range backends {
		var dr merge.DropReply
		b.DropSession(merge.DropArgs{SessionID: sessionID}, &dr)
	}
}

// Placement names the shard currently owning a session (by placement if
// the session is live, by ring position otherwise; "" on an empty
// fabric) — surfaced through session.Status.
func (r *Router) Placement(sessionID string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if rt := r.place[sessionID]; rt != nil {
		return rt.shard
	}
	return r.ring.Owner(sessionID)
}

// SetShardAddr records the RMI endpoint whose ObjectName(shard)
// registration serves a shard's manager ("" clears it). Heavy polling
// clients learn it through PlacementInfo and dial the owning shard
// directly, skipping the router hop on every poll.
func (r *Router) SetShardAddr(shard, addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if addr == "" {
		delete(r.addrs, shard)
		return
	}
	r.addrs[shard] = addr
}

// PlacementInfo names the shard currently owning a session together
// with the RMI endpoint serving it (addr "" when the shard's endpoint
// was never recorded — the client then keeps polling via the router).
func (r *Router) PlacementInfo(sessionID string) (shard, addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if rt := r.place[sessionID]; rt != nil {
		return rt.shard, r.addrs[rt.shard]
	}
	home := r.ring.Owner(sessionID)
	return home, r.addrs[home]
}

// Shards lists the fabric members, sorted.
func (r *Router) Shards() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring.Shards()
}

// Handoffs reports how many live-session migrations the router has
// completed across all ring edits.
func (r *Router) Handoffs() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.handoffs
}

// Sessions enumerates every session the router has placed, sorted.
func (r *Router) Sessions() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.place))
	for id := range r.place {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// AddShard joins a shard to the fabric and migrates to it every live
// session the new ring assigns it. The first error aborts the remaining
// migrations (already-moved sessions stay moved).
func (r *Router) AddShard(name string, b Backend) error {
	if name == "" || b == nil {
		return errors.New("shard: AddShard needs a name and a backend")
	}
	r.topoMu.Lock()
	defer r.topoMu.Unlock()
	r.mu.Lock()
	if _, dup := r.backends[name]; dup {
		r.mu.Unlock()
		return fmt.Errorf("shard: shard %q already present", name)
	}
	r.backends[name] = b
	r.ring.Add(name)
	moves := r.pendingMovesLocked()
	r.mu.Unlock()
	return r.migrate(moves)
}

// RemoveShard retires a shard, first migrating every session it owns to
// the shard's successors on the ring. The last shard cannot be removed.
func (r *Router) RemoveShard(name string) error {
	r.topoMu.Lock()
	defer r.topoMu.Unlock()
	r.mu.Lock()
	if _, ok := r.backends[name]; !ok {
		r.mu.Unlock()
		return fmt.Errorf("shard: no shard %q", name)
	}
	if r.ring.Size() == 1 {
		r.mu.Unlock()
		return errors.New("shard: cannot remove the last shard")
	}
	r.ring.Remove(name)
	moves := r.pendingMovesLocked()
	r.mu.Unlock()
	if err := r.migrate(moves); err != nil {
		return err
	}
	r.mu.Lock()
	delete(r.backends, name)
	r.mu.Unlock()
	return nil
}

type move struct {
	session  string
	from, to string
	fromB    Backend
	toB      Backend
}

// pendingMovesLocked lists the placed sessions whose ring owner differs
// from their current placement. Caller holds r.mu.
func (r *Router) pendingMovesLocked() []move {
	var moves []move
	for sid, rt := range r.place {
		want := r.ring.Owner(sid)
		if want == "" || want == rt.shard {
			continue
		}
		moves = append(moves, move{
			session: sid, from: rt.shard, to: want,
			fromB: r.backends[rt.shard], toB: r.backends[want],
		})
	}
	sort.Slice(moves, func(i, j int) bool { return moves[i].session < moves[j].session })
	return moves
}

func (r *Router) migrate(moves []move) error {
	for _, mv := range moves {
		if err := r.handoff(mv); err != nil {
			return fmt.Errorf("shard: moving session %s %s→%s: %w", mv.session, mv.from, mv.to, err)
		}
	}
	return nil
}

// handoff migrates one session: seal + export on the old owner, import
// into the new one at the same version, flip routing, drop the old
// copy. Publishes racing any stage either land before the seal (and are
// exported), or land sealed and draw NeedFull — the producer's next
// snapshot is a full baseline against the new owner, so its updates
// survive in the re-baseline rather than the lost delta.
func (r *Router) handoff(mv move) error {
	var exp merge.ExportReply
	if err := mv.fromB.Export(merge.ExportArgs{SessionID: mv.session, Seal: true}, &exp); err != nil {
		return fmt.Errorf("export: %w", err)
	}
	if exp.Found {
		imp := merge.ImportArgs{
			SessionID: mv.session, Version: exp.Version,
			Workers: exp.Workers, Removed: exp.Removed, Logs: exp.Logs,
		}
		var ir merge.ImportReply
		if err := mv.toB.Import(imp, &ir); err != nil {
			// Roll back: the source still holds every byte of the
			// session (export copies, it doesn't drain), so lifting the
			// seal is all recovery takes and the session keeps serving
			// from its old owner.
			var sr merge.SealReply
			if rerr := mv.fromB.Seal(merge.SealArgs{SessionID: mv.session, On: false}, &sr); rerr != nil {
				return fmt.Errorf("import: %v (unseal rollback also failed, session frozen until the shard answers: %w)", err, rerr)
			}
			return fmt.Errorf("import: %w", err)
		}
	}
	r.mu.Lock()
	if rt := r.place[mv.session]; rt != nil {
		rt.shard = mv.to
	}
	r.handoffs++
	r.mu.Unlock()
	// Tombstone, not delete: a racing publish that already resolved the
	// old backend must keep drawing NeedFull there, never re-create an
	// unsealed session whose accepted snapshots nobody polls. The shell
	// is reaped by the teardown Drop broadcast. Failure is benign — the
	// full sealed copy lingers until then instead.
	var dr merge.DropReply
	mv.fromB.DropSession(merge.DropArgs{SessionID: mv.session, Tombstone: true}, &dr)
	return nil
}

var (
	_ Backend         = (*merge.Manager)(nil)
	_ merge.Service   = (*Router)(nil)
	_ merge.Publisher = (*Router)(nil)
)
