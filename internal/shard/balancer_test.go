package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/ipa-grid/ipa/internal/aida"
	"github.com/ipa-grid/ipa/internal/merge"
)

// sessionsHomedOn generates session IDs until n of them ring-home on
// the named shard.
func sessionsHomedOn(t *testing.T, r *Router, shard string, n int, prefix string) []string {
	t.Helper()
	var out []string
	for i := 0; len(out) < n; i++ {
		if i > 100000 {
			t.Fatalf("could not find %d sessions homed on %s", n, shard)
		}
		sid := fmt.Sprintf("%s-%d", prefix, i)
		if r.Placement(sid) == shard {
			out = append(out, sid)
		}
	}
	return out
}

// loadWorker couples a delta-publishing transport with a flat-reference
// twin so fills can be verified bit-for-bit after moves.
type loadWorker struct {
	sid    string
	tree   *aida.Tree
	hist   *aida.Histogram1D
	tr     *merge.Transport
	ref    *aida.Tree
	refH   *aida.Histogram1D
	refTr  *merge.Transport
	fills  int
	router *Router
}

func newLoadWorker(t *testing.T, router *Router, flat *merge.Manager, sid string) *loadWorker {
	t.Helper()
	w := &loadWorker{sid: sid, tree: aida.NewTree(), ref: aida.NewTree(), router: router}
	var err error
	if w.hist, err = w.tree.H1D("/h", "x", "", 10, 0, 10); err != nil {
		t.Fatal(err)
	}
	if w.refH, err = w.ref.H1D("/h", "x", "", 10, 0, 10); err != nil {
		t.Fatal(err)
	}
	w.tr = merge.NewTransport(sid, "w0", router)
	w.refTr = merge.NewTransport(sid, "w0", flat)
	return w
}

func sendVia(tr *merge.Transport, tree *aida.Tree) error {
	_, err := tr.Send(func(full bool) (merge.Snapshot, error) {
		var d *aida.DeltaState
		var err error
		if full {
			d, err = tree.FullDelta()
		} else {
			d, err = tree.Delta()
		}
		return merge.Snapshot{Delta: d}, err
	})
	return err
}

// publish fills once and publishes to both the fabric and the flat
// reference. Fabric errors are tolerated (a killed shard mid-test);
// the transport re-baselines on the next send, so nothing is lost.
// goroutine-safe (t.Error, never t.Fatal).
func (w *loadWorker) publish(t *testing.T, x float64) {
	t.Helper()
	w.hist.Fill(x)
	w.refH.Fill(x)
	w.fills++
	_ = sendVia(w.tr, w.tree)
	if err := sendVia(w.refTr, w.ref); err != nil {
		t.Error(err)
	}
}

func (w *loadWorker) poll(t *testing.T) {
	t.Helper()
	var reply merge.PollReply
	if err := w.router.Poll(merge.PollArgs{SessionID: w.sid}, &reply); err != nil {
		t.Error(err)
	}
}

// TestRebalanceMovesHotSessionsAndConverges is the rebalance property
// test: with all the hot sessions hashing onto one shard, the balancer
// must move load off it, converge (a steady-load round eventually makes
// zero moves), and never diverge from the flat-merge reference.
func TestRebalanceMovesHotSessionsAndConverges(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			router, _ := newRouterWithShards(t, 4)
			flat := merge.NewManager()

			hotShard := "shard00"
			var workers []*loadWorker
			hot := map[string]bool{}
			for _, sid := range sessionsHomedOn(t, router, hotShard, 4, "hot") {
				workers = append(workers, newLoadWorker(t, router, flat, sid))
				hot[sid] = true
			}
			// A few background sessions wherever the ring puts them.
			for i := 0; i < 6; i++ {
				sid := fmt.Sprintf("cold-%d", i)
				workers = append(workers, newLoadWorker(t, router, flat, sid))
			}
			for _, w := range workers {
				w.publish(t, float64(rng.Intn(10)))
			}

			b := NewBalancer(router)
			b.MaxMoves = 2
			b.Band = 0.25
			if _, err := b.RunOnce(); err != nil { // warm the rate window
				t.Fatal(err)
			}
			lastMoves := -1
			for round := 0; round < 10; round++ {
				for _, w := range workers {
					n := 1
					if hot[w.sid] {
						n = 12 // the skew the hash can't see
					}
					for k := 0; k < n; k++ {
						w.publish(t, float64(rng.Intn(10)))
						w.poll(t)
					}
				}
				moved, err := b.RunOnce()
				if err != nil {
					t.Fatal(err)
				}
				lastMoves = moved
			}
			if b.Moves() == 0 {
				t.Fatal("balancer made no moves under heavy skew")
			}
			if lastMoves != 0 {
				t.Fatalf("balancer still moving (%d) after 10 steady rounds — not converging", lastMoves)
			}
			// The hot sessions must no longer all share one shard.
			onHot := 0
			for sid := range hot {
				if router.Placement(sid) == hotShard {
					onHot++
				}
			}
			if onHot == len(hot) {
				t.Fatalf("all %d hot sessions still on %s after rebalancing", onHot, hotShard)
			}
			// No lost or duplicated fills across the moves.
			for _, w := range workers {
				got, want := fullState(t, router, w.sid), fullState(t, flat, w.sid)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("session %s diverged after rebalancing", w.sid)
				}
			}
		})
	}
}

// TestRebalanceNoLostFillsUnderChurn runs the balancer loop concurrently
// with live publish traffic (run under -race): every fill must survive
// the mid-flight handoffs exactly once.
func TestRebalanceNoLostFillsUnderChurn(t *testing.T) {
	router, _ := newRouterWithShards(t, 3)
	flat := merge.NewManager()
	const rounds = 60

	sids := sessionsHomedOn(t, router, "shard00", 3, "churn-hot")
	sids = append(sids, "churn-a", "churn-b", "churn-c")
	var wg sync.WaitGroup
	for _, sid := range sids {
		w := newLoadWorker(t, router, flat, sid)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				w.publish(t, float64(i%10))
				w.poll(t)
			}
		}()
	}
	b := NewBalancer(router)
	b.MaxMoves = 1
	b.Band = 0.1
	stop := make(chan struct{})
	var bwg sync.WaitGroup
	bwg.Add(1)
	go func() {
		defer bwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := b.RunOnce(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	bwg.Wait()
	if t.Failed() {
		return
	}
	for _, sid := range sids {
		got, want := fullState(t, router, sid), fullState(t, flat, sid)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("session %s diverged under rebalance churn", sid)
		}
	}
}

// ------------------------------------------------------------- faults

var errShardDown = errors.New("injected shard death")

// flakyBackend wraps a live Manager and fails every call while killed —
// the crash model for fault tests (the state is unreachable, exactly as
// if the node vanished).
type flakyBackend struct {
	inner Backend
	dead  atomic.Bool
}

func (f *flakyBackend) call(do func() error) error {
	if f.dead.Load() {
		return errShardDown
	}
	return do()
}

func (f *flakyBackend) Publish(a merge.PublishArgs, r *merge.PublishReply) error {
	return f.call(func() error { return f.inner.Publish(a, r) })
}
func (f *flakyBackend) PublishBatch(a merge.PublishBatchArgs, r *merge.PublishBatchReply) error {
	return f.call(func() error { return f.inner.PublishBatch(a, r) })
}
func (f *flakyBackend) Poll(a merge.PollArgs, r *merge.PollReply) error {
	return f.call(func() error { return f.inner.Poll(a, r) })
}
func (f *flakyBackend) Reset(a merge.ResetArgs, r *merge.ResetReply) error {
	return f.call(func() error { return f.inner.Reset(a, r) })
}
func (f *flakyBackend) Flush(a merge.FlushArgs, r *merge.FlushReply) error {
	return f.call(func() error { return f.inner.Flush(a, r) })
}
func (f *flakyBackend) Export(a merge.ExportArgs, r *merge.ExportReply) error {
	return f.call(func() error { return f.inner.Export(a, r) })
}
func (f *flakyBackend) Import(a merge.ImportArgs, r *merge.ImportReply) error {
	return f.call(func() error { return f.inner.Import(a, r) })
}
func (f *flakyBackend) Stats(a merge.StatsArgs, r *merge.StatsReply) error {
	return f.call(func() error { return f.inner.Stats(a, r) })
}
func (f *flakyBackend) Seal(a merge.SealArgs, r *merge.SealReply) error {
	return f.call(func() error { return f.inner.Seal(a, r) })
}
func (f *flakyBackend) DropSession(a merge.DropArgs, r *merge.DropReply) error {
	return f.call(func() error { return f.inner.DropSession(a, r) })
}
func (f *flakyBackend) SessionList(a merge.SessionsArgs, r *merge.SessionsReply) error {
	return f.call(func() error { return f.inner.SessionList(a, r) })
}
func (f *flakyBackend) Mirror(a merge.MirrorArgs, r *merge.MirrorReply) error {
	return f.call(func() error { return f.inner.Mirror(a, r) })
}
func (f *flakyBackend) Promote(a merge.PromoteArgs, r *merge.PromoteReply) error {
	return f.call(func() error { return f.inner.Promote(a, r) })
}
func (f *flakyBackend) Fence(a merge.FenceArgs, r *merge.FenceReply) error {
	return f.call(func() error { return f.inner.Fence(a, r) })
}

// TestKillShardRehome kills a shard under live sessions: the health
// prober must mark it dead after Threshold failed probes, its sessions
// must re-home lazily and rebuild through the engines' re-baseline, and
// no update may be lost (run under -race in CI).
func TestKillShardRehome(t *testing.T) {
	router := NewRouter(0)
	flaky := make(map[string]*flakyBackend)
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("shard%02d", i)
		fb := &flakyBackend{inner: merge.NewManager()}
		flaky[name] = fb
		if err := router.AddShard(name, fb); err != nil {
			t.Fatal(err)
		}
	}
	flat := merge.NewManager()

	const victim = "shard00"
	var workers []*loadWorker
	victims := map[string]bool{}
	for _, sid := range sessionsHomedOn(t, router, victim, 3, "kill") {
		workers = append(workers, newLoadWorker(t, router, flat, sid))
		victims[sid] = true
	}
	for i, n := 0, 0; n < 4; i++ {
		sid := fmt.Sprintf("safe-%d", i)
		if router.Placement(sid) == victim {
			continue // the hash put it on the shard we are about to kill
		}
		workers = append(workers, newLoadWorker(t, router, flat, sid))
		n++
	}
	for r := 0; r < 3; r++ {
		for _, w := range workers {
			w.publish(t, float64(r))
		}
	}
	genBefore := router.Generation()
	victimSid := workers[0].sid // homed on the victim by construction
	var preKill merge.PollReply
	if err := router.Poll(merge.PollArgs{SessionID: victimSid}, &preKill); err != nil {
		t.Fatal(err)
	}
	if preKill.Epoch == 0 {
		t.Fatal("live session reported epoch 0")
	}

	// Kill the victim. Publishes against it now fail (and their
	// transports arm a re-baseline); the health prober needs Threshold
	// consecutive failed probes to react.
	flaky[victim].dead.Store(true)
	h := NewHealth(router)
	h.Threshold = 2
	var evicted []string
	h.OnDead = func(shard string, sids []string) { evicted = sids }
	if died, _ := h.RunOnce(); len(died) != 0 {
		t.Fatalf("one failed probe already killed %v (threshold 2)", died)
	}
	died, _ := h.RunOnce()
	if !reflect.DeepEqual(died, []string{victim}) {
		t.Fatalf("died = %v, want [%s]", died, victim)
	}
	if got := router.DeadShards(); !reflect.DeepEqual(got, []string{victim}) {
		t.Fatalf("DeadShards = %v", got)
	}
	if len(evicted) != len(victims) {
		t.Fatalf("evicted %v, want the %d victim sessions", evicted, len(victims))
	}
	if router.Generation() <= genBefore {
		t.Fatal("fault eviction did not bump the placement generation")
	}
	// Evicted sessions re-home on live shards — and a pre-recovery poll
	// must answer (empty) rather than error.
	for sid := range victims {
		if home := router.Placement(sid); home == victim || home == "" {
			t.Fatalf("session %s still homed on dead shard (%q)", sid, home)
		}
		var reply merge.PollReply
		if err := router.Poll(merge.PollArgs{SessionID: sid}, &reply); err != nil {
			t.Fatalf("poll of evicted session %s: %v", sid, err)
		}
	}

	// Recovery: every worker keeps publishing; victims' transports
	// re-baseline onto the new owners (their trees hold full state).
	for r := 0; r < 3; r++ {
		for _, w := range workers {
			w.publish(t, float64(5+r))
		}
	}
	for _, w := range workers {
		got, want := fullState(t, router, w.sid), fullState(t, flat, w.sid)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("session %s lost updates across the shard kill", w.sid)
		}
	}
	// The rebuilt incarnation announces itself: polls carry a new epoch,
	// so an incremental client full-resyncs even if the new version
	// counter has already overtaken its old one.
	var postKill merge.PollReply
	if err := router.Poll(merge.PollArgs{SessionID: victimSid}, &postKill); err != nil {
		t.Fatal(err)
	}
	if postKill.Epoch == 0 || postKill.Epoch == preKill.Epoch {
		t.Fatalf("re-homed session epoch %d (was %d): clients cannot detect the rebuild", postKill.Epoch, preKill.Epoch)
	}

	// Revival: the shard answers probes again and rejoins the routing
	// pool; re-homed sessions stay where they are.
	flaky[victim].dead.Store(false)
	_, revived := h.RunOnce()
	if !reflect.DeepEqual(revived, []string{victim}) {
		t.Fatalf("revived = %v, want [%s]", revived, victim)
	}
	if got := router.DeadShards(); len(got) != 0 {
		t.Fatalf("DeadShards after revival = %v", got)
	}
	for sid := range victims {
		if router.Placement(sid) == victim {
			t.Fatalf("revival moved session %s back to the wiped shard", sid)
		}
	}
}

// ------------------------------------------------- placement hygiene

// TestPlacementInfoNeverReportsDepartedShard is the regression test for
// the stale-addrs fix: a removed shard's endpoint must vanish with it,
// and a dropped session's placement must fall back to ring position.
func TestPlacementInfoNeverReportsDepartedShard(t *testing.T) {
	router, _ := newRouterWithShards(t, 2)
	router.SetShardAddr("shard00", "10.0.0.1:7000")
	router.SetShardAddr("shard01", "10.0.0.2:7000")

	w := &testWorker{session: "sess-x", id: "w0", tree: aida.NewTree()}
	w.tree.H1D("/h", "x", "", 10, 0, 10)
	w.publish(t, router, true)
	home, _ := router.PlacementInfo("sess-x")
	other := "shard00"
	if home == "shard00" {
		other = "shard01"
	}

	if err := router.RemoveShard(home); err != nil {
		t.Fatal(err)
	}
	if shard, addr := router.PlacementInfo("sess-x"); shard != other {
		t.Fatalf("placement after removal = %q, want %q", shard, other)
	} else if want := map[string]string{"shard00": "10.0.0.1:7000", "shard01": "10.0.0.2:7000"}[other]; addr != want {
		t.Fatalf("addr after removal = %q, want %q", addr, want)
	}
	// Re-adding the departed shard must not resurrect its old endpoint.
	if err := router.AddShard(home, merge.NewManager()); err != nil {
		t.Fatal(err)
	}
	for _, sid := range append(sessionsHomedOn(t, router, home, 1, "probe"), "sess-x") {
		if shard, addr := router.PlacementInfo(sid); shard == home && addr != "" {
			t.Fatalf("re-added shard %s reports stale addr %q", home, addr)
		}
	}
	// Drop forgets the placement: info falls back to ring position.
	router.Drop("sess-x")
	if got := router.Sessions(); len(got) != 0 {
		t.Fatalf("sessions after drop = %v", got)
	}
	if shard, _ := router.PlacementInfo("sess-x"); shard != router.Placement("sess-x") {
		t.Fatalf("dropped session info %q != ring placement %q", shard, router.Placement("sess-x"))
	}
}

// TestMoveSessionPinnedSurvivesRingEdit: a balancer move is deliberate —
// a later topology change must not silently undo it, but losing the
// pinned shard must re-home the session.
func TestMoveSessionPinnedSurvivesRingEdit(t *testing.T) {
	router, _ := newRouterWithShards(t, 2)
	flat := merge.NewManager()
	w := newLoadWorker(t, router, flat, "sess-pin")
	w.publish(t, 1)
	from := router.Placement("sess-pin")
	to := "shard00"
	if from == "shard00" {
		to = "shard01"
	}
	if err := router.MoveSession("sess-pin", to); err != nil {
		t.Fatal(err)
	}
	if got := router.Placement("sess-pin"); got != to {
		t.Fatalf("placement after move = %q, want %q", got, to)
	}
	// Ring edits leave the pinned placement alone.
	if err := router.AddShard("extra", merge.NewManager()); err != nil {
		t.Fatal(err)
	}
	if got := router.Placement("sess-pin"); got != to {
		t.Fatalf("ring edit moved pinned session to %q", got)
	}
	w.publish(t, 2)
	// Removing the pinned shard re-homes (and unpins) the session.
	if err := router.RemoveShard(to); err != nil {
		t.Fatal(err)
	}
	if got := router.Placement("sess-pin"); got == to || got == "" {
		t.Fatalf("placement after pinned-shard removal = %q", got)
	}
	w.publish(t, 3)
	got, want := fullState(t, router, "sess-pin"), fullState(t, flat, "sess-pin")
	if !reflect.DeepEqual(got, want) {
		t.Fatal("pinned session diverged across ring edits")
	}
}

// TestLockedRoutingAblationServes: the retained locked-resolution
// baseline must behave identically, just slower.
func TestLockedRoutingAblationServes(t *testing.T) {
	router := NewRouter(0)
	router.LockedRouting = true
	for i := 0; i < 2; i++ {
		if err := router.AddShard(fmt.Sprintf("shard%02d", i), merge.NewManager()); err != nil {
			t.Fatal(err)
		}
	}
	flat := merge.NewManager()
	w := newLoadWorker(t, router, flat, "sess-locked")
	for i := 0; i < 5; i++ {
		w.publish(t, float64(i))
		w.poll(t)
	}
	got, want := fullState(t, router, "sess-locked"), fullState(t, flat, "sess-locked")
	if !reflect.DeepEqual(got, want) {
		t.Fatal("locked-routing fabric diverged from flat merge")
	}
}
