// Package shard turns the single AIDA merge manager into a horizontally
// scalable fabric: sessions are spread across multiple merge.Manager
// shards by consistent hashing on the session ID, behind a Router that
// speaks exactly the surface one Manager spoke — engines, SubMergers,
// polling clients, and the session service cannot tell the difference.
//
// The paper's architecture funnels every session's publishes and polls
// through one mediator, the ceiling DIAL's distributed-scheduler design
// warns about for interactive analysis at scale. Here the root tier
// becomes N managers (in-process or behind RMI on other nodes), the
// ring assigns each session a home shard, and ring changes migrate live
// sessions with no lost updates: the old owner is sealed and exported,
// the dump is imported into the new owner as a baseline at the same
// version, routing flips, and any publish that raced the move is
// answered NeedFull so its producer re-baselines on the new shard.
package shard

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// defaultVnodes is the virtual-node count per shard. 64 points per
// shard keeps the expected load imbalance across shards in the few-
// percent range without making ring edits noticeable.
const defaultVnodes = 64

type ringPoint struct {
	hash  uint64
	shard string
}

// Ring is a consistent-hash ring with virtual nodes mapping session IDs
// to shard names. Adding or removing one shard moves only ~1/N of the
// key space. Not safe for concurrent use; the Router serializes access.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by hash
	shards map[string]struct{}
}

// NewRing creates an empty ring (vnodes <= 0 selects the default).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	return &Ring{vnodes: vnodes, shards: make(map[string]struct{})}
}

func hashKey(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	// FNV avalanches poorly on short, similar keys (shard names differ in
	// one digit), which skews vnode spacing badly; a splitmix64 finalizer
	// decorrelates the ring positions.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add inserts a shard's virtual nodes (no-op if already present).
func (r *Ring) Add(shard string) {
	if _, ok := r.shards[shard]; ok {
		return
	}
	r.shards[shard] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: hashKey(shard, strconv.Itoa(i)), shard: shard})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a shard's virtual nodes (no-op if absent).
func (r *Ring) Remove(shard string) {
	if _, ok := r.shards[shard]; !ok {
		return
	}
	delete(r.shards, shard)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.shard != shard {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Owner maps a session ID to its home shard ("" on an empty ring): the
// first virtual node at or after the key's hash, wrapping around.
func (r *Ring) Owner(sessionID string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hashKey(sessionID)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// Shards lists the member shard names, sorted.
func (r *Ring) Shards() []string {
	out := make([]string, 0, len(r.shards))
	for s := range r.shards {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Size reports the member count.
func (r *Ring) Size() int { return len(r.shards) }
