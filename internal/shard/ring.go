package shard

import "github.com/ipa-grid/ipa/internal/shard/placement"

// Ring is the consistent-hash ring, now owned by the placement
// subsystem (it lives inside the immutable placement.Table so routing
// reads need no lock); the alias keeps the fabric's original surface.
type Ring = placement.Ring

// NewRing creates an empty ring (vnodes <= 0 selects the default
// virtual-node count).
func NewRing(vnodes int) *Ring { return placement.NewRing(vnodes) }
