// Package scheduler is the compute element's local resource manager — the
// PBS/Condor-style batch system behind the paper's GRAM server ("the GRAM
// server places the request to start a pre-configured number of analysis
// engines on the job scheduler", §3.2).
//
// It models the paper's central Grid-side requirement: "a dedicated timely
// scheduler queue" (§1, §6). A cluster has nodes with slots and named
// queues with priorities; the interactive queue can optionally preempt
// batch work so analysis engines start "within the limits of human
// tolerance" (§2.3) even when the farm is full.
package scheduler

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// State is a job's lifecycle position.
type State int

// Job states.
const (
	Pending State = iota
	Running
	Done
	Failed
	Cancelled
)

// String renders the state like scheduler CLIs do.
func (s State) String() string {
	switch s {
	case Pending:
		return "PENDING"
	case Running:
		return "RUNNING"
	case Done:
		return "DONE"
	case Failed:
		return "FAILED"
	case Cancelled:
		return "CANCELLED"
	default:
		return fmt.Sprintf("STATE(%d)", int(s))
	}
}

// JobFunc is the payload a job executes on a node. The context is
// cancelled on preemption or Cancel.
type JobFunc func(ctx context.Context, node string) error

// Spec describes a submission.
type Spec struct {
	Name  string
	User  string
	Queue string
	Run   JobFunc
}

// Job is a live submission handle.
type Job struct {
	ID    int64
	Spec  Spec
	state State
	node  string
	err   error

	submitted time.Time
	started   time.Time
	finished  time.Time

	cancel  context.CancelFunc
	doneCh  chan struct{}
	cluster *Cluster
	// preempted marks a cancellation that should requeue rather than kill.
	preempted bool
}

// Snapshot is an immutable view of a job.
type Snapshot struct {
	ID        int64
	Name      string
	User      string
	Queue     string
	State     State
	Node      string
	Err       error
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
}

// QueueConfig declares a scheduler queue.
type QueueConfig struct {
	Name string
	// Priority orders queues; higher dispatches first.
	Priority int
	// Preempting queues may displace running jobs from lower-priority
	// queues when no slot is free — the paper's fast interactive queue.
	Preempting bool
	// Preemptible jobs may be displaced (typical for batch queues).
	Preemptible bool
}

// NodeConfig declares a worker node.
type NodeConfig struct {
	Name  string
	Slots int
}

type node struct {
	name  string
	slots int
	used  int
}

// Cluster is the scheduler.
type Cluster struct {
	mu      sync.Mutex
	nodes   []*node
	queues  map[string]QueueConfig
	pending map[string][]*Job // queue name → FIFO
	running map[int64]*Job
	all     map[int64]*Job
	nextID  int64
	closed  bool

	// DispatchDelay adds latency between slot assignment and job start —
	// the qsub-to-run latency of a real batch system (used by tests and
	// the queue ablation).
	DispatchDelay time.Duration
}

// New creates a cluster.
func New(nodes []NodeConfig, queues []QueueConfig) (*Cluster, error) {
	if len(nodes) == 0 || len(queues) == 0 {
		return nil, errors.New("scheduler: need at least one node and one queue")
	}
	c := &Cluster{
		queues:  make(map[string]QueueConfig),
		pending: make(map[string][]*Job),
		running: make(map[int64]*Job),
		all:     make(map[int64]*Job),
	}
	for _, n := range nodes {
		if n.Slots <= 0 || n.Name == "" {
			return nil, fmt.Errorf("scheduler: bad node %+v", n)
		}
		c.nodes = append(c.nodes, &node{name: n.Name, slots: n.Slots})
	}
	for _, q := range queues {
		if q.Name == "" {
			return nil, errors.New("scheduler: queue needs a name")
		}
		if _, dup := c.queues[q.Name]; dup {
			return nil, fmt.Errorf("scheduler: duplicate queue %q", q.Name)
		}
		c.queues[q.Name] = q
	}
	return c, nil
}

// Nodes returns the node names.
func (c *Cluster) Nodes() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = n.name
	}
	return out
}

// TotalSlots returns the cluster slot count.
func (c *Cluster) TotalSlots() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for _, n := range c.nodes {
		total += n.slots
	}
	return total
}

// Submit queues a job.
func (c *Cluster) Submit(spec Spec) (*Job, error) {
	if spec.Run == nil {
		return nil, errors.New("scheduler: job has no payload")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errors.New("scheduler: cluster closed")
	}
	if _, ok := c.queues[spec.Queue]; !ok {
		return nil, fmt.Errorf("scheduler: no queue %q", spec.Queue)
	}
	c.nextID++
	j := &Job{
		ID: c.nextID, Spec: spec, state: Pending,
		submitted: time.Now(), doneCh: make(chan struct{}), cluster: c,
	}
	c.all[j.ID] = j
	c.pending[spec.Queue] = append(c.pending[spec.Queue], j)
	c.schedule()
	return j, nil
}

// queuesByPriority returns queue names, highest priority first,
// alphabetical within equal priority (determinism).
func (c *Cluster) queuesByPriority() []string {
	names := make([]string, 0, len(c.queues))
	for n := range c.queues {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		qi, qj := c.queues[names[i]], c.queues[names[j]]
		if qi.Priority != qj.Priority {
			return qi.Priority > qj.Priority
		}
		return names[i] < names[j]
	})
	return names
}

// schedule assigns pending jobs to free slots. Caller holds c.mu.
func (c *Cluster) schedule() {
	for _, qname := range c.queuesByPriority() {
		queue := c.queues[qname]
		for len(c.pending[qname]) > 0 {
			j := c.pending[qname][0]
			n := c.freeNode()
			if n == nil && queue.Preempting {
				n = c.preemptFor(queue)
			}
			if n == nil {
				break // no capacity for this queue; try lower queues
			}
			c.pending[qname] = c.pending[qname][1:]
			c.startJob(j, n)
		}
	}
}

func (c *Cluster) freeNode() *node {
	for _, n := range c.nodes {
		if n.used < n.slots {
			return n
		}
	}
	return nil
}

// preemptFor displaces one running preemptible job from a lower-priority
// queue and returns its node (nil if nothing can be displaced). The victim
// is cancelled and requeued at the head of its queue. Caller holds c.mu.
func (c *Cluster) preemptFor(q QueueConfig) *node {
	var victim *Job
	for _, j := range c.running {
		vq := c.queues[j.Spec.Queue]
		if !vq.Preemptible || vq.Priority >= q.Priority {
			continue
		}
		// Prefer the most recently started victim (least work lost).
		if victim == nil || j.started.After(victim.started) {
			victim = j
		}
	}
	if victim == nil {
		return nil
	}
	victim.preempted = true
	victim.cancel()
	// Release the victim's slot immediately so the preemptor can take it;
	// the victim's cleanup sees the preempted flag and skips the release.
	for _, n := range c.nodes {
		if n.name == victim.node {
			n.used--
			return n
		}
	}
	return nil
}

// startJob marks j running on n and launches its payload.
// Caller holds c.mu.
func (c *Cluster) startJob(j *Job, n *node) {
	ctx, cancel := context.WithCancel(context.Background())
	j.state = Running
	j.node = n.name
	j.started = time.Now()
	j.cancel = cancel
	n.used++
	c.running[j.ID] = j
	delay := c.DispatchDelay
	go func() {
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
			}
		}
		var err error
		if ctx.Err() == nil {
			err = j.Spec.Run(ctx, n.name)
		} else {
			err = ctx.Err()
		}
		c.finishJob(j, n, err, ctx)
	}()
}

func (c *Cluster) finishJob(j *Job, n *node, err error, ctx context.Context) {
	c.mu.Lock()
	delete(c.running, j.ID)
	wasPreempted := j.preempted
	j.preempted = false
	if !wasPreempted {
		n.used--
	}
	// Classify.
	switch {
	case wasPreempted:
		// Requeue at the head: preemption must not lose the job.
		j.state = Pending
		j.node = ""
		j.doneChReset()
		c.pending[j.Spec.Queue] = append([]*Job{j}, c.pending[j.Spec.Queue]...)
	case ctx.Err() != nil && err == ctx.Err():
		j.state = Cancelled
		j.err = err
		j.finished = time.Now()
		close(j.doneCh)
	case err != nil:
		j.state = Failed
		j.err = err
		j.finished = time.Now()
		close(j.doneCh)
	default:
		j.state = Done
		j.finished = time.Now()
		close(j.doneCh)
	}
	c.schedule()
	c.mu.Unlock()
}

// doneChReset swaps in a fresh done channel for a requeued job.
// Caller holds c.mu.
func (j *Job) doneChReset() {
	select {
	case <-j.doneCh:
		j.doneCh = make(chan struct{})
	default:
		// not closed; keep it
	}
}

// Cancel stops a pending or running job.
func (c *Cluster) Cancel(id int64) error {
	c.mu.Lock()
	j := c.all[id]
	if j == nil {
		c.mu.Unlock()
		return fmt.Errorf("scheduler: no job %d", id)
	}
	switch j.state {
	case Pending:
		q := c.pending[j.Spec.Queue]
		for i, p := range q {
			if p.ID == id {
				c.pending[j.Spec.Queue] = append(q[:i], q[i+1:]...)
				break
			}
		}
		j.state = Cancelled
		j.err = context.Canceled
		j.finished = time.Now()
		close(j.doneCh)
		c.mu.Unlock()
		return nil
	case Running:
		cancel := j.cancel
		c.mu.Unlock()
		cancel()
		return nil
	default:
		c.mu.Unlock()
		return nil // already finished
	}
}

// Wait blocks until the job leaves the system (Done/Failed/Cancelled) or
// the timeout elapses (0 = wait forever).
func (c *Cluster) Wait(id int64, timeout time.Duration) (Snapshot, error) {
	c.mu.Lock()
	j := c.all[id]
	c.mu.Unlock()
	if j == nil {
		return Snapshot{}, fmt.Errorf("scheduler: no job %d", id)
	}
	for {
		c.mu.Lock()
		ch := j.doneCh
		state := j.state
		c.mu.Unlock()
		if state == Done || state == Failed || state == Cancelled {
			return c.Snapshot(id)
		}
		if timeout > 0 {
			select {
			case <-ch:
			case <-time.After(timeout):
				return c.Snapshot(id)
			}
		} else {
			<-ch
		}
		// A preempted job's channel may have been replaced; loop to
		// re-check the state rather than trusting one wakeup.
	}
}

// Snapshot returns a point-in-time view of a job.
func (c *Cluster) Snapshot(id int64) (Snapshot, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j := c.all[id]
	if j == nil {
		return Snapshot{}, fmt.Errorf("scheduler: no job %d", id)
	}
	return Snapshot{
		ID: j.ID, Name: j.Spec.Name, User: j.Spec.User, Queue: j.Spec.Queue,
		State: j.state, Node: j.node, Err: j.err,
		Submitted: j.submitted, Started: j.started, Finished: j.finished,
	}, nil
}

// QueueLength returns the pending count of a queue.
func (c *Cluster) QueueLength(queue string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending[queue])
}

// RunningCount returns the number of running jobs.
func (c *Cluster) RunningCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.running)
}

// Close cancels everything and refuses new submissions.
func (c *Cluster) Close() {
	c.mu.Lock()
	c.closed = true
	var cancels []context.CancelFunc
	for _, j := range c.running {
		cancels = append(cancels, j.cancel)
	}
	for qname, q := range c.pending {
		for _, j := range q {
			j.state = Cancelled
			j.err = context.Canceled
			j.finished = time.Now()
			close(j.doneCh)
		}
		c.pending[qname] = nil
	}
	c.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
}
