package scheduler

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func twoQueueCluster(t *testing.T, nodes, slots int) *Cluster {
	t.Helper()
	var nc []NodeConfig
	for i := 0; i < nodes; i++ {
		nc = append(nc, NodeConfig{Name: string(rune('a' + i)), Slots: slots})
	}
	c, err := New(nc, []QueueConfig{
		{Name: "interactive", Priority: 10, Preempting: true},
		{Name: "batch", Priority: 1, Preemptible: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestRunToCompletion(t *testing.T) {
	c := twoQueueCluster(t, 2, 1)
	ran := make(chan string, 1)
	j, err := c.Submit(Spec{Name: "hello", User: "alice", Queue: "interactive",
		Run: func(ctx context.Context, node string) error {
			ran <- node
			return nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := c.Wait(j.ID, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != Done {
		t.Fatalf("state = %v", snap.State)
	}
	node := <-ran
	if node != snap.Node {
		t.Fatalf("ran on %q, snapshot says %q", node, snap.Node)
	}
}

func TestFailurePropagates(t *testing.T) {
	c := twoQueueCluster(t, 1, 1)
	boom := errors.New("segfault in user code")
	j, _ := c.Submit(Spec{Queue: "batch", Run: func(context.Context, string) error { return boom }})
	snap, _ := c.Wait(j.ID, 5*time.Second)
	if snap.State != Failed || !errors.Is(snap.Err, boom) {
		t.Fatalf("snap = %+v", snap)
	}
}

func TestFIFOWithinQueue(t *testing.T) {
	c := twoQueueCluster(t, 1, 1)
	var order []int
	var mu sync.Mutex
	block := make(chan struct{})
	// First job occupies the single slot.
	c.Submit(Spec{Queue: "batch", Run: func(context.Context, string) error {
		<-block
		return nil
	}})
	var jobs []*Job
	for i := 1; i <= 3; i++ {
		i := i
		j, _ := c.Submit(Spec{Queue: "batch", Run: func(context.Context, string) error {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			return nil
		}})
		jobs = append(jobs, j)
	}
	close(block)
	for _, j := range jobs {
		c.Wait(j.ID, 5*time.Second)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, want := range []int{1, 2, 3} {
		if order[i] != want {
			t.Fatalf("execution order %v", order)
		}
	}
}

func TestPriorityQueueFirst(t *testing.T) {
	c := twoQueueCluster(t, 1, 1)
	block := make(chan struct{})
	c.Submit(Spec{Queue: "batch", Run: func(context.Context, string) error { <-block; return nil }})
	var first atomic.Int32
	// Queue a batch job then an interactive job while the slot is busy.
	bj, _ := c.Submit(Spec{Queue: "batch", Run: func(context.Context, string) error {
		first.CompareAndSwap(0, 2)
		return nil
	}})
	ij, _ := c.Submit(Spec{Queue: "interactive", Run: func(context.Context, string) error {
		first.CompareAndSwap(0, 1)
		return nil
	}})
	// NOTE: the interactive queue is Preempting, so it will displace the
	// blocked batch job rather than waiting.
	snap, _ := c.Wait(ij.ID, 5*time.Second)
	if snap.State != Done {
		t.Fatalf("interactive job state %v", snap.State)
	}
	if first.Load() != 1 {
		t.Fatalf("interactive job did not run first (marker=%d)", first.Load())
	}
	close(block)
	c.Wait(bj.ID, 5*time.Second)
}

func TestPreemptionRequeuesVictim(t *testing.T) {
	c := twoQueueCluster(t, 1, 1)
	victimRuns := atomic.Int32{}
	victimStarted := make(chan struct{}, 2)
	v, _ := c.Submit(Spec{Name: "victim", Queue: "batch", Run: func(ctx context.Context, _ string) error {
		victimRuns.Add(1)
		victimStarted <- struct{}{}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond):
			return nil
		}
	}})
	<-victimStarted
	i, _ := c.Submit(Spec{Name: "urgent", Queue: "interactive", Run: func(context.Context, string) error {
		return nil
	}})
	snap, _ := c.Wait(i.ID, 5*time.Second)
	if snap.State != Done {
		t.Fatalf("urgent job %v", snap.State)
	}
	// Victim must eventually rerun and complete.
	vsnap, _ := c.Wait(v.ID, 5*time.Second)
	if vsnap.State != Done {
		t.Fatalf("victim final state %v (err %v)", vsnap.State, vsnap.Err)
	}
	if victimRuns.Load() < 2 {
		t.Fatalf("victim ran %d times, want ≥2 (preempt + rerun)", victimRuns.Load())
	}
}

func TestCancelPending(t *testing.T) {
	c := twoQueueCluster(t, 1, 1)
	block := make(chan struct{})
	defer close(block)
	c.Submit(Spec{Queue: "interactive", Run: func(context.Context, string) error { <-block; return nil }})
	j, _ := c.Submit(Spec{Queue: "interactive", Run: func(context.Context, string) error { return nil }})
	if err := c.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	snap, _ := c.Snapshot(j.ID)
	if snap.State != Cancelled {
		t.Fatalf("state = %v", snap.State)
	}
	if c.QueueLength("interactive") != 0 {
		t.Fatal("cancelled job still queued")
	}
}

func TestCancelRunning(t *testing.T) {
	c := twoQueueCluster(t, 1, 1)
	started := make(chan struct{})
	j, _ := c.Submit(Spec{Queue: "interactive", Run: func(ctx context.Context, _ string) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	}})
	<-started
	if err := c.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	snap, _ := c.Wait(j.ID, 5*time.Second)
	if snap.State != Cancelled {
		t.Fatalf("state = %v", snap.State)
	}
}

func TestParallelThroughput(t *testing.T) {
	c := twoQueueCluster(t, 4, 2) // 8 slots
	var running, peak atomic.Int32
	var jobs []*Job
	for i := 0; i < 32; i++ {
		j, _ := c.Submit(Spec{Queue: "batch", Run: func(context.Context, string) error {
			now := running.Add(1)
			for {
				p := peak.Load()
				if now <= p || peak.CompareAndSwap(p, now) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			running.Add(-1)
			return nil
		}})
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		snap, _ := c.Wait(j.ID, 10*time.Second)
		if snap.State != Done {
			t.Fatalf("job %d state %v", j.ID, snap.State)
		}
	}
	if p := peak.Load(); p > 8 {
		t.Fatalf("peak concurrency %d exceeds 8 slots", p)
	}
	if p := peak.Load(); p < 2 {
		t.Fatalf("peak concurrency %d — no parallelism at all", p)
	}
}

func TestSubmitValidation(t *testing.T) {
	c := twoQueueCluster(t, 1, 1)
	if _, err := c.Submit(Spec{Queue: "interactive"}); err == nil {
		t.Fatal("nil payload accepted")
	}
	if _, err := c.Submit(Spec{Queue: "nope", Run: func(context.Context, string) error { return nil }}); err == nil {
		t.Fatal("unknown queue accepted")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, []QueueConfig{{Name: "q"}}); err == nil {
		t.Fatal("no nodes accepted")
	}
	if _, err := New([]NodeConfig{{Name: "n", Slots: 1}}, nil); err == nil {
		t.Fatal("no queues accepted")
	}
	if _, err := New([]NodeConfig{{Name: "n", Slots: 0}}, []QueueConfig{{Name: "q"}}); err == nil {
		t.Fatal("zero slots accepted")
	}
	if _, err := New([]NodeConfig{{Name: "n", Slots: 1}},
		[]QueueConfig{{Name: "q"}, {Name: "q"}}); err == nil {
		t.Fatal("duplicate queue accepted")
	}
}

func TestCloseCancelsEverything(t *testing.T) {
	c := twoQueueCluster(t, 1, 1)
	started := make(chan struct{})
	r, _ := c.Submit(Spec{Queue: "batch", Run: func(ctx context.Context, _ string) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	}})
	<-started
	p, _ := c.Submit(Spec{Queue: "batch", Run: func(context.Context, string) error { return nil }})
	c.Close()
	rs, _ := c.Wait(r.ID, 5*time.Second)
	ps, _ := c.Snapshot(p.ID)
	if rs.State != Cancelled || ps.State != Cancelled {
		t.Fatalf("states after close: %v %v", rs.State, ps.State)
	}
	if _, err := c.Submit(Spec{Queue: "batch", Run: func(context.Context, string) error { return nil }}); err == nil {
		t.Fatal("submit after close accepted")
	}
}

func TestDispatchDelay(t *testing.T) {
	c := twoQueueCluster(t, 1, 1)
	c.DispatchDelay = 30 * time.Millisecond
	start := time.Now()
	j, _ := c.Submit(Spec{Queue: "batch", Run: func(context.Context, string) error { return nil }})
	snap, _ := c.Wait(j.ID, 5*time.Second)
	if snap.State != Done {
		t.Fatalf("state %v", snap.State)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("dispatch delay not applied (elapsed %v)", elapsed)
	}
}
