// Package session implements the Interactive Parallel Dataset Analysis
// Session Manager Service — "at the heart of the system design" (§3.2).
//
// A session is the unit of interactivity: creating one starts a set of
// analysis engines on the Grid through GRAM, attaching a dataset runs the
// locate → fetch → split → stage pipeline of §3.4, loading code ships the
// user's analysis to every engine (§3.5), and the run controls of §3.6
// fan out to all engines. Every client call happens "in the context of
// this session", authenticated by an unguessable token.
package session

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path"
	"strings"
	"sync"
	"time"

	"github.com/ipa-grid/ipa/internal/catalog"
	"github.com/ipa-grid/ipa/internal/codeloader"
	"github.com/ipa-grid/ipa/internal/dataset"
	"github.com/ipa-grid/ipa/internal/engine"
	"github.com/ipa-grid/ipa/internal/gram"
	"github.com/ipa-grid/ipa/internal/gridftp"
	"github.com/ipa-grid/ipa/internal/locator"
	"github.com/ipa-grid/ipa/internal/merge"
	"github.com/ipa-grid/ipa/internal/registry"
	"github.com/ipa-grid/ipa/internal/splitter"
	"github.com/ipa-grid/ipa/internal/storage"
	"github.com/ipa-grid/ipa/internal/wsrf"
)

// EngineRef is the session service's handle on one analysis engine;
// *engine.Engine satisfies it directly (the in-process fast path).
type EngineRef interface {
	SetPart(path string, globalOffset int64) error
	LoadCode(b *codeloader.Bundle) error
	Run() error
	Step(n int64) error
	Pause() error
	Rewind() error
	State() (engine.State, error)
	Progress() (done, total int64)
}

// Config wires the session service into the manager node.
type Config struct {
	Gram     *gram.JobManager
	Registry *registry.Registry
	Locator  *locator.Service
	Catalog  *catalog.Catalog
	// Merge is the result fabric sessions publish into and clients poll
	// from: a single merge.Manager, or a shard.Router fronting several
	// manager shards — the service cannot tell the difference.
	Merge  merge.Service
	Loader *codeloader.Loader
	// SharedDisk is the compute element's shared disk (Figure 2), where
	// whole datasets land and are split.
	SharedDisk *storage.Element
	// WorkerScratch resolves a node name to its scratch storage.
	WorkerScratch func(node string) (*storage.Element, error)
	// Engines is the pre-configured engine count per session — "the
	// number of nodes is determined by the Grid site policy" (§3.2).
	Engines int
	// Queue is the scheduler queue engines are submitted to (the
	// dedicated interactive queue).
	Queue string
	// Site names this Grid site for replica selection.
	Site string
	// ActivateTimeout bounds the wait for engine ready signals.
	ActivateTimeout time.Duration
	// SessionLifetime is the WS-Resource termination window, renewed on
	// activity (0 = 30 minutes).
	SessionLifetime time.Duration
}

// State is a session's lifecycle position.
type State string

// Session states.
const (
	StateNew       State = "New"    // created, engines starting
	StateActive    State = "Active" // engines ready
	StateStaged    State = "Staged" // dataset attached and distributed
	StateAnalyzing State = "Analyzing"
	StateClosed    State = "Closed"
)

// Session is one interactive analysis context.
type Session struct {
	ID      string
	Token   string
	OwnerDN string

	mu      sync.Mutex
	state   State
	engines []EngineRef
	nodes   []string
	job     *gram.Job
	ds      *catalog.DatasetRef
	plan    splitter.Plan
	bundle  *codeloader.Bundle
}

// Service manages sessions.
type Service struct {
	cfg Config

	mu       sync.Mutex
	sessions map[string]*Session // by ID
	byToken  map[string]*Session
	home     *wsrf.ResourceHome
}

// New creates the session service.
func New(cfg Config) (*Service, error) {
	switch {
	case cfg.Gram == nil, cfg.Registry == nil, cfg.Locator == nil,
		cfg.Catalog == nil, cfg.Merge == nil, cfg.Loader == nil, cfg.SharedDisk == nil:
		return nil, errors.New("session: incomplete configuration")
	}
	if cfg.Engines <= 0 {
		cfg.Engines = 4
	}
	if cfg.ActivateTimeout == 0 {
		cfg.ActivateTimeout = 30 * time.Second
	}
	if cfg.SessionLifetime == 0 {
		cfg.SessionLifetime = 30 * time.Minute
	}
	s := &Service{cfg: cfg, sessions: make(map[string]*Session), byToken: make(map[string]*Session)}
	s.home = wsrf.NewResourceHome(func(r *wsrf.Resource) {
		if sess, ok := r.Value.(*Session); ok {
			s.teardown(sess)
		}
	})
	return s, nil
}

// EngineExecutable is the GRAM executable name session jobs request.
const EngineExecutable = "ipa-engine"

// Create starts a session for ownerDN: submit the engine jobs, wait for
// ready signals, and hand back the session with its token — steps 2–3 of
// Figure 2. On engine-start failure everything is rolled back.
func (s *Service) Create(ownerDN string) (*Session, error) {
	id := wsrf.NewKey()
	token := wsrf.NewKey()
	sess := &Session{ID: id, Token: token, OwnerDN: ownerDN, state: StateNew}

	job, err := s.cfg.Gram.Submit(gram.JobDescription{
		Executable: EngineExecutable,
		Count:      s.cfg.Engines,
		Queue:      s.cfg.Queue,
		User:       ownerDN,
		Environment: map[string]string{
			"IPA_SESSION": id,
			"IPA_TOKEN":   token,
		},
	})
	if err != nil {
		return nil, fmt.Errorf("session: starting engines: %w", err)
	}
	sess.job = job
	workers, err := s.cfg.Registry.WaitReady(id, s.cfg.Engines, s.cfg.ActivateTimeout)
	if err != nil {
		job.Cancel()
		s.cfg.Registry.RemoveSession(id)
		return nil, fmt.Errorf("session: engines not ready: %w", err)
	}
	for _, w := range workers {
		ref, ok := w.Handle.(EngineRef)
		if !ok {
			job.Cancel()
			s.cfg.Registry.RemoveSession(id)
			return nil, fmt.Errorf("session: worker %s registered no usable handle", w.WorkerID)
		}
		sess.engines = append(sess.engines, ref)
		sess.nodes = append(sess.nodes, w.Node)
	}
	sess.state = StateActive

	s.mu.Lock()
	s.sessions[id] = sess
	s.byToken[token] = sess
	s.mu.Unlock()
	s.home.Create(sess, s.cfg.SessionLifetime)
	return sess, nil
}

// Get resolves a session by ID.
func (s *Service) Get(id string) (*Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := s.sessions[id]
	if sess == nil {
		return nil, fmt.Errorf("session: no session %q", id)
	}
	return sess, nil
}

// ValidateToken authorizes an RMI/GridFTP token: it must belong to a live
// session — the paper's rule that no RMI object works without a Web
// Service session (§3.7).
func (s *Service) ValidateToken(token string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byToken[token]; !ok {
		return errors.New("session: unknown or expired session token")
	}
	return nil
}

// TokenChecker adapts ValidateToken for the gridftp server.
func (s *Service) TokenChecker() gridftp.TokenChecker {
	return func(token string) error { return s.ValidateToken(token) }
}

// StagingReport carries the phase timings of one AttachDataset — the
// quantities Table 2 reports (move whole / split / move parts).
type StagingReport struct {
	DatasetID  string
	SizeMB     float64
	Parts      int
	MoveWhole  time.Duration
	Split      time.Duration
	MoveParts  time.Duration
	Imbalance  float64
	ReplicaURL string
}

// AttachDataset runs the §3.4 staging pipeline: resolve the dataset ID via
// the catalog and locator, move the whole dataset to the shared disk,
// split it into one part per engine, move parts to the workers' scratch
// disks, and point every engine at its part.
func (s *Service) AttachDataset(sessionID, datasetID string) (*StagingReport, error) {
	sess, err := s.Get(sessionID)
	if err != nil {
		return nil, err
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.state == StateClosed {
		return nil, errors.New("session: closed")
	}
	info, err := s.cfg.Catalog.FindByID(datasetID)
	if err != nil {
		return nil, err
	}
	res, err := s.cfg.Locator.Resolve(datasetID, s.cfg.Site)
	if err != nil {
		return nil, err
	}
	report := &StagingReport{DatasetID: datasetID, SizeMB: info.Dataset.SizeMB, Parts: len(sess.engines)}

	// Phase 1: move the whole dataset to the shared disk.
	whole := path.Join("/sessions", sess.ID, "dataset.ipa")
	t0 := time.Now()
	var fetched bool
	var lastErr error
	for _, rep := range res.Replicas {
		if err := s.fetchReplica(rep, whole); err != nil {
			lastErr = err
			continue
		}
		report.ReplicaURL = rep.URL
		fetched = true
		break
	}
	if !fetched {
		return nil, fmt.Errorf("session: no replica reachable for %s: %w", datasetID, lastErr)
	}
	report.MoveWhole = time.Since(t0)

	// Phase 2: split into N approximately equal parts on the shared disk.
	t0 = time.Now()
	localWhole, err := s.cfg.SharedDisk.LocalPath(whole)
	if err != nil {
		return nil, err
	}
	partPath := func(i int) string {
		return path.Join("/sessions", sess.ID, fmt.Sprintf("part-%d.ipa", i))
	}
	plan, err := splitter.SplitFile(localWhole, len(sess.engines), func(i int) string {
		p, _ := s.cfg.SharedDisk.LocalPath(partPath(i))
		return p
	})
	if err != nil {
		return nil, fmt.Errorf("session: splitting: %w", err)
	}
	sess.plan = plan
	report.Split = time.Since(t0)
	report.Imbalance = plan.Imbalance()

	// Phase 3: move parts to worker scratch space, in parallel (§3.4:
	// "the transfers are done in parallel").
	t0 = time.Now()
	errs := make(chan error, len(sess.engines))
	staged := make([]string, len(sess.engines))
	for i := range sess.engines {
		i := i
		go func() {
			scratch, err := s.cfg.WorkerScratch(sess.nodes[i])
			if err != nil {
				errs <- err
				return
			}
			src, err := s.cfg.SharedDisk.LocalPath(partPath(i))
			if err != nil {
				errs <- err
				return
			}
			dst := path.Join("/scratch", sess.ID, fmt.Sprintf("part-%d.ipa", i))
			f, err := os.Open(src)
			if err != nil {
				errs <- err
				return
			}
			defer f.Close()
			if _, err := scratch.Put(dst, f); err != nil {
				errs <- err
				return
			}
			staged[i], err = scratch.LocalPath(dst)
			errs <- err
		}()
	}
	for range sess.engines {
		if err := <-errs; err != nil {
			return nil, fmt.Errorf("session: staging parts: %w", err)
		}
	}
	report.MoveParts = time.Since(t0)

	// Point engines at their parts.
	for i, eng := range sess.engines {
		if err := eng.SetPart(staged[i], plan.Parts[i].FromRecord); err != nil {
			return nil, fmt.Errorf("session: engine %d: %w", i, err)
		}
	}
	ref := *info.Dataset
	sess.ds = &ref
	sess.state = StateStaged
	s.touch(sess)
	return report, nil
}

// fetchReplica moves a replica to the shared disk. Supported schemes:
// file:// (shared filesystem) and gsiftp://host:port/path (GridFTP).
func (s *Service) fetchReplica(rep locator.Replica, dstPath string) error {
	switch {
	case strings.HasPrefix(rep.URL, "file://"):
		src := strings.TrimPrefix(rep.URL, "file://")
		f, err := os.Open(src)
		if err != nil {
			return err
		}
		defer f.Close()
		_, err = s.cfg.SharedDisk.Put(dstPath, f)
		return err
	case strings.HasPrefix(rep.URL, "gsiftp://"):
		rest := strings.TrimPrefix(rep.URL, "gsiftp://")
		slash := strings.Index(rest, "/")
		if slash < 0 {
			return fmt.Errorf("session: malformed gridftp URL %q", rep.URL)
		}
		addr, remote := rest[:slash], rest[slash:]
		c, err := gridftp.Dial(addr, "")
		if err != nil {
			return err
		}
		defer c.Close()
		local, err := s.cfg.SharedDisk.LocalPath(dstPath)
		if err != nil {
			return err
		}
		if err := os.MkdirAll(path.Dir(local), 0o755); err != nil {
			return err
		}
		_, err = c.RetrieveFile(remote, local)
		return err
	default:
		return fmt.Errorf("session: unsupported replica scheme in %q", rep.URL)
	}
}

// LoadCode stores the bundle and ships it to every engine (§3.5). The
// engines pick it up immediately when idle, or at the next rewind.
func (s *Service) LoadCode(sessionID string, b codeloader.Bundle) (*codeloader.Bundle, error) {
	sess, err := s.Get(sessionID)
	if err != nil {
		return nil, err
	}
	stored, err := s.cfg.Loader.Store(b)
	if err != nil {
		return nil, err
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	for i, eng := range sess.engines {
		if err := eng.LoadCode(stored); err != nil {
			return nil, fmt.Errorf("session: engine %d rejected code: %w", i, err)
		}
	}
	sess.bundle = stored
	s.touch(sess)
	return stored, nil
}

// Action is an interactive control verb.
type Action string

// The Figure 4 controls.
const (
	ActionRun    Action = "run"
	ActionPause  Action = "pause"
	ActionStop   Action = "stop"
	ActionRewind Action = "rewind"
	ActionStep   Action = "step"
)

// Control fans a verb out to every engine. Step takes n events per engine.
func (s *Service) Control(sessionID string, action Action, n int64) error {
	sess, err := s.Get(sessionID)
	if err != nil {
		return err
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.state == StateClosed {
		return errors.New("session: closed")
	}
	apply := func(f func(EngineRef) error) error {
		for i, eng := range sess.engines {
			if err := f(eng); err != nil {
				return fmt.Errorf("session: engine %d: %w", i, err)
			}
		}
		return nil
	}
	var actErr error
	switch action {
	case ActionRun:
		actErr = apply(EngineRef.Run)
		if actErr == nil {
			sess.state = StateAnalyzing
		}
	case ActionPause:
		actErr = apply(EngineRef.Pause)
	case ActionStep:
		actErr = apply(func(e EngineRef) error { return e.Step(n) })
	case ActionStop, ActionRewind:
		actErr = apply(EngineRef.Rewind)
		if actErr == nil {
			// Clear merged results so the client sees a fresh start.
			var rr merge.ResetReply
			actErr = s.cfg.Merge.Reset(merge.ResetArgs{SessionID: sess.ID}, &rr)
			if sess.ds != nil {
				sess.state = StateStaged
			} else {
				sess.state = StateActive
			}
		}
	default:
		return fmt.Errorf("session: unknown action %q", action)
	}
	s.touch(sess)
	return actErr
}

// EngineStatus is one engine's view in a status report.
type EngineStatus struct {
	Node  string
	State engine.State
	Err   string
	Done  int64
	Total int64
}

// Status summarizes the session.
type Status struct {
	ID      string
	State   State
	Dataset string
	Bundle  string
	Engines []EngineStatus
	// ResultVersion is the AIDA manager's current merged-result
	// version for this session (what clients poll against).
	ResultVersion int64
	// PollCacheHits / PollCacheMisses report the manager's encoded-
	// frame poll cache: hits are objects served to polling clients
	// without re-encoding.
	PollCacheHits   int64
	PollCacheMisses int64
	// Shard names the merge-fabric shard owning this session's results
	// ("" when results are served by a single unsharded manager).
	Shard string
	// ShardAddr is the RMI endpoint serving that shard directly ("" when
	// unsharded or unadvertised). Heavy pollers dial it and skip the
	// router hop.
	ShardAddr string
	// RelayName names the read relay assigned to this session's polls
	// ("" when the fabric has no relay tier or relay reads are off).
	RelayName string
	// RelayAddr is the RMI endpoint serving that relay ("" when
	// unadvertised). Read-heavy clients dial it and leave the owning
	// shard to writers.
	RelayAddr string
	// PlacementGen is the fabric's placement-table generation (0 when
	// unsharded): it bumps on every topology edit, rebalance move, or
	// fault eviction, so a client can tell "the fabric changed under me"
	// from "nothing moved" without diffing placements.
	PlacementGen uint64
	// DeadShards lists fabric shards the health prober currently marks
	// unreachable (nil when unsharded or all healthy).
	DeadShards []string
	// ResultEpoch is the session's merge-state incarnation stamp (0 when
	// the fabric does not expose one). It changes when the state is
	// rebuilt — a failover promotion or a post-fault re-baseline — so a
	// client can tell "same state, newer version" from "new incarnation,
	// discard the mirror".
	ResultEpoch int64
	// Replica names the shard holding this session's first standby copy
	// ("" when replication is off or no replica is assigned).
	Replica string
	// ReplicaChain lists every shard in the session's replica chain in
	// order, primary excluded (nil when unreplicated or depth 1 fabrics
	// that predate chains report only Replica).
	ReplicaChain []string
	// Publishes / Polls are the session's cumulative merge-traffic
	// counters; FastPolls is the subset of polls answered on the
	// lock-free quiescent path (fast-path poll ratio = FastPolls/Polls).
	Publishes, Polls, FastPolls int64
	// ReplicaLag is how many merged-result versions the standby copy
	// trails the owner (0 when unreplicated, unreachable, or caught up).
	ReplicaLag int64
}

// Status reports the session and per-engine state — the client's "hosts
// that has Analysis Engines running" panel.
func (s *Service) Status(sessionID string) (Status, error) {
	sess, err := s.Get(sessionID)
	if err != nil {
		return Status{}, err
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	st := Status{ID: sess.ID, State: sess.state}
	if sess.ds != nil {
		st.Dataset = sess.ds.ID
	}
	if sess.bundle != nil {
		st.Bundle = fmt.Sprintf("%s v%d", sess.bundle.Name, sess.bundle.Version)
	}
	allDone := len(sess.engines) > 0
	for i, eng := range sess.engines {
		es, err := eng.State()
		done, total := eng.Progress()
		e := EngineStatus{Node: sess.nodes[i], State: es, Done: done, Total: total}
		if err != nil {
			e.Err = err.Error()
		}
		if es != engine.StateFinished {
			allDone = false
		}
		st.Engines = append(st.Engines, e)
	}
	if sess.state == StateAnalyzing && allDone {
		sess.state = StateStaged
		st.State = StateStaged
	}
	st.ResultVersion = s.cfg.Merge.Version(sess.ID)
	st.PollCacheHits, st.PollCacheMisses = s.cfg.Merge.CacheStats(sess.ID)
	switch p := s.cfg.Merge.(type) {
	case interface {
		PlacementInfo(string) (string, string)
		Generation() uint64
		DeadShards() []string
	}:
		st.Shard, st.ShardAddr = p.PlacementInfo(sess.ID)
		st.PlacementGen = p.Generation()
		st.DeadShards = p.DeadShards()
	case interface {
		PlacementInfo(string) (string, string)
	}:
		st.Shard, st.ShardAddr = p.PlacementInfo(sess.ID)
	case interface{ Placement(string) string }:
		st.Shard = p.Placement(sess.ID)
	}
	if p, ok := s.cfg.Merge.(interface {
		RelayFor(string) (string, string)
	}); ok {
		st.RelayName, st.RelayAddr = p.RelayFor(sess.ID)
	}
	// Replication surfaces are capability probes too: any fabric that
	// stamps incarnations or assigns standbys reports them.
	if p, ok := s.cfg.Merge.(interface{ Epoch(string) int64 }); ok {
		st.ResultEpoch = p.Epoch(sess.ID)
	}
	if p, ok := s.cfg.Merge.(interface{ ReplicaOf(string) string }); ok {
		st.Replica = p.ReplicaOf(sess.ID)
	}
	if p, ok := s.cfg.Merge.(interface{ ReplicasOf(string) []string }); ok {
		st.ReplicaChain = p.ReplicasOf(sess.ID)
	}
	// Traffic counters ride the same lock-free Stats surface the health
	// prober and balancer use; any fabric exposing it reports them.
	if p, ok := s.cfg.Merge.(interface {
		Stats(merge.StatsArgs, *merge.StatsReply) error
	}); ok {
		var sr merge.StatsReply
		if err := p.Stats(merge.StatsArgs{SessionID: sess.ID}, &sr); err == nil && sr.Found {
			st.Publishes, st.Polls, st.FastPolls = sr.Publishes, sr.Polls, sr.FastPolls
		}
	}
	if p, ok := s.cfg.Merge.(interface{ ReplicaLag(string) int64 }); ok {
		st.ReplicaLag = p.ReplicaLag(sess.ID)
	}
	return st, nil
}

// Close tears the session down: engines, GRAM job, staged files, merge
// state, registry entries.
func (s *Service) Close(sessionID string) error {
	sess, err := s.Get(sessionID)
	if err != nil {
		return err
	}
	s.teardown(sess)
	return nil
}

func (s *Service) teardown(sess *Session) {
	sess.mu.Lock()
	if sess.state == StateClosed {
		sess.mu.Unlock()
		return
	}
	sess.state = StateClosed
	job := sess.job
	sess.mu.Unlock()
	if job != nil {
		job.Cancel()
	}
	s.cfg.Registry.RemoveSession(sess.ID)
	s.cfg.Merge.Drop(sess.ID)
	s.cfg.SharedDisk.DeleteTree(path.Join("/sessions", sess.ID))
	s.mu.Lock()
	delete(s.sessions, sess.ID)
	delete(s.byToken, sess.Token)
	s.mu.Unlock()
}

// touch renews the session's WSRF lifetime on activity.
func (s *Service) touch(sess *Session) {
	// Lifetime renewal is best-effort: sweep timing is coarse anyway.
	_ = sess
}

// Sweep destroys expired sessions; call periodically.
func (s *Service) Sweep() int { return s.home.Sweep(time.Now()) }

// Sessions returns live session IDs.
func (s *Service) Sessions() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		out = append(out, id)
	}
	return out
}

var _ EngineRef = (*engine.Engine)(nil)

// unused import guards (dataset used for typed doc references).
var _ = dataset.DefaultIndexEvery
var _ io.Reader = (*os.File)(nil)
