// Package analysis defines the contract between analysis engines and user
// analysis code.
//
// In the paper, "analysis code will be written by the physicists, which
// should take the records of the dataset as input and run the analysis"
// (§2.4). An Analysis receives raw dataset records one at a time and fills
// AIDA objects; the engine drives the lifecycle and can re-instantiate the
// analysis on rewind or hot code reload. Implementations come from two
// places, mirroring the paper's "Java classes and PNUTS scripts" (§3.5):
// native Go analyses registered in the Registry (the "Java class" analogue)
// and interpreted scripts adapted by the script engine package.
package analysis

import (
	"fmt"
	"sort"
	"sync"

	"github.com/ipa-grid/ipa/internal/aida"
)

// Context carries per-run state into analysis callbacks.
type Context struct {
	// Tree is where the analysis books and fills its result objects.
	Tree *aida.Tree
	// Params are free-form key=value arguments from the client.
	Params map[string]string
	// EventIndex is the absolute index of the record being processed
	// within the full dataset (not the staged part).
	EventIndex int64
	// WorkerID identifies the engine running the analysis (diagnostics).
	WorkerID string
}

// Param returns a parameter value or a default.
func (c *Context) Param(key, def string) string {
	if v, ok := c.Params[key]; ok {
		return v
	}
	return def
}

// Analysis processes dataset records and produces AIDA objects.
type Analysis interface {
	// Init is called once before the first record (and again after a
	// rewind); it should (re)book histograms.
	Init(ctx *Context) error
	// Process is called for every record.
	Process(record []byte, ctx *Context) error
	// End is called after the last record of the staged part.
	End(ctx *Context) error
}

// Factory builds a fresh Analysis instance from client parameters.
type Factory func(params map[string]string) (Analysis, error)

// Registry maps analysis names to factories — the equivalent of the
// engine's class path of pre-installed Java analyses.
type Registry struct {
	mu        sync.RWMutex
	factories map[string]Factory
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{factories: make(map[string]Factory)} }

// Register adds a named factory; re-registering a name panics (two analyses
// with one name is a wiring bug, not a runtime condition).
func (r *Registry) Register(name string, f Factory) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.factories[name]; dup {
		panic(fmt.Sprintf("analysis: duplicate registration of %q", name))
	}
	r.factories[name] = f
}

// New instantiates a registered analysis.
func (r *Registry) New(name string, params map[string]string) (Analysis, error) {
	r.mu.RLock()
	f, ok := r.factories[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("analysis: unknown analysis %q (have %v)", name, r.Names())
	}
	return f(params)
}

// Names lists registered analyses, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.factories))
	for n := range r.factories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Default is the process-wide registry used by engines unless overridden.
var Default = NewRegistry()

// Register adds a factory to the default registry.
func Register(name string, f Factory) { Default.Register(name, f) }

// Func adapts three closures into an Analysis (handy in tests).
type Func struct {
	InitFn    func(*Context) error
	ProcessFn func([]byte, *Context) error
	EndFn     func(*Context) error
}

// Init implements Analysis.
func (f *Func) Init(ctx *Context) error {
	if f.InitFn == nil {
		return nil
	}
	return f.InitFn(ctx)
}

// Process implements Analysis.
func (f *Func) Process(rec []byte, ctx *Context) error {
	if f.ProcessFn == nil {
		return nil
	}
	return f.ProcessFn(rec, ctx)
}

// End implements Analysis.
func (f *Func) End(ctx *Context) error {
	if f.EndFn == nil {
		return nil
	}
	return f.EndFn(ctx)
}
