// Package codeloader is the "Managing Class Loader" of Figure 2 — the
// service that stages user analysis code from the client to the analysis
// engines (§2.4, §3.5) and lets new versions replace old ones between runs
// ("changes can be made in the analysis code and the new analysis code can
// be dynamically reloaded", §3.6).
//
// Bundles are named, versioned, and content-hashed; engines instantiate
// them either as interpreted scripts (the PNUTS path) or as registered
// native analyses (the Java-class path).
package codeloader

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"

	"github.com/ipa-grid/ipa/internal/analysis"
	"github.com/ipa-grid/ipa/internal/script"
)

// Language selects how a bundle is instantiated.
type Language string

// Supported bundle languages.
const (
	// LangScript bundles carry interpreter source (the PNUTS analogue).
	LangScript Language = "script"
	// LangNative bundles name a pre-registered Go analysis (the
	// "Java classes" path of §3.5).
	LangNative Language = "native"
)

// Bundle is one shippable unit of analysis code.
type Bundle struct {
	// Name identifies the bundle across versions.
	Name string
	// Language picks the instantiation path.
	Language Language
	// Source is interpreter source (LangScript).
	Source string
	// Analysis names a registered native analysis (LangNative).
	Analysis string
	// Decoder names the record decoder scripts see ("lc-event", "raw").
	Decoder string
	// Params are passed to the analysis at Init.
	Params map[string]string

	// Version counts uploads of this Name (assigned by the loader).
	Version int
	// Hash is the content hash (assigned by the loader).
	Hash string
}

// SizeBytes approximates the staged payload size — what the paper's
// "Stage Code (bytecode size: 15 kb): 7 sec" row measures.
func (b *Bundle) SizeBytes() int {
	n := len(b.Source) + len(b.Analysis) + len(b.Decoder) + len(b.Name)
	for k, v := range b.Params {
		n += len(k) + len(v)
	}
	return n
}

func (b *Bundle) contentHash() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%s\x00%s\x00", b.Language, b.Source, b.Analysis, b.Decoder)
	keys := make([]string, 0, len(b.Params))
	for k := range b.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%s\x00", k, b.Params[k])
	}
	return hex.EncodeToString(h.Sum(nil)[:12])
}

// Validate checks a bundle before storage, compiling script sources so
// syntax errors surface at upload time on the client, not later on N
// worker nodes.
func (b *Bundle) Validate() error {
	if b.Name == "" {
		return fmt.Errorf("codeloader: bundle needs a name")
	}
	switch b.Language {
	case LangScript:
		if b.Source == "" {
			return fmt.Errorf("codeloader: script bundle %q has no source", b.Name)
		}
		if _, err := script.Compile(b.Source); err != nil {
			return fmt.Errorf("codeloader: bundle %q does not compile: %w", b.Name, err)
		}
	case LangNative:
		if b.Analysis == "" {
			return fmt.Errorf("codeloader: native bundle %q names no analysis", b.Name)
		}
	default:
		return fmt.Errorf("codeloader: unknown language %q", b.Language)
	}
	return nil
}

// Instantiate builds a fresh analysis instance from the bundle.
func (b *Bundle) Instantiate(reg *analysis.Registry) (analysis.Analysis, error) {
	switch b.Language {
	case LangScript:
		return script.NewAnalysis(b.Source, b.Decoder)
	case LangNative:
		if reg == nil {
			reg = analysis.Default
		}
		return reg.New(b.Analysis, b.Params)
	default:
		return nil, fmt.Errorf("codeloader: unknown language %q", b.Language)
	}
}

// Loader stores bundles with version history.
type Loader struct {
	mu       sync.RWMutex
	latest   map[string]*Bundle
	versions map[string]map[int]*Bundle
}

// New creates an empty loader.
func New() *Loader {
	return &Loader{latest: make(map[string]*Bundle), versions: make(map[string]map[int]*Bundle)}
}

// Store validates and saves a bundle, assigning version and hash.
// Re-uploading identical content returns the existing version unchanged.
func (l *Loader) Store(b Bundle) (*Bundle, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	b.Hash = b.contentHash()
	l.mu.Lock()
	defer l.mu.Unlock()
	if prev := l.latest[b.Name]; prev != nil && prev.Hash == b.Hash {
		return prev, nil
	}
	ver := 1
	if prev := l.latest[b.Name]; prev != nil {
		ver = prev.Version + 1
	}
	b.Version = ver
	cp := b
	l.latest[b.Name] = &cp
	if l.versions[b.Name] == nil {
		l.versions[b.Name] = make(map[int]*Bundle)
	}
	l.versions[b.Name][ver] = &cp
	return &cp, nil
}

// Latest fetches the newest version of a named bundle.
func (l *Loader) Latest(name string) (*Bundle, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	b, ok := l.latest[name]
	if !ok {
		return nil, false
	}
	cp := *b
	return &cp, true
}

// Version fetches a specific version.
func (l *Loader) Version(name string, version int) (*Bundle, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	b, ok := l.versions[name][version]
	if !ok {
		return nil, false
	}
	cp := *b
	return &cp, true
}

// Names lists stored bundle names, sorted.
func (l *Loader) Names() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]string, 0, len(l.latest))
	for n := range l.latest {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
