package codeloader

import (
	"testing"

	"github.com/ipa-grid/ipa/internal/aida"
	"github.com/ipa-grid/ipa/internal/analysis"
)

const okScript = `function process(r) {}`

func TestStoreAssignsVersionsAndHashes(t *testing.T) {
	l := New()
	b1, err := l.Store(Bundle{Name: "a", Language: LangScript, Source: okScript})
	if err != nil {
		t.Fatal(err)
	}
	if b1.Version != 1 || b1.Hash == "" {
		t.Fatalf("bundle = %+v", b1)
	}
	// Identical content: same version back.
	b1again, err := l.Store(Bundle{Name: "a", Language: LangScript, Source: okScript})
	if err != nil || b1again.Version != 1 {
		t.Fatalf("re-upload: %+v, %v", b1again, err)
	}
	// Changed content bumps the version.
	b2, err := l.Store(Bundle{Name: "a", Language: LangScript, Source: okScript + "\nx = 1;"})
	if err != nil || b2.Version != 2 {
		t.Fatalf("v2 = %+v, %v", b2, err)
	}
	if b2.Hash == b1.Hash {
		t.Fatal("different content, same hash")
	}
	// History retrievable.
	old, ok := l.Version("a", 1)
	if !ok || old.Hash != b1.Hash {
		t.Fatal("version history lost")
	}
	latest, ok := l.Latest("a")
	if !ok || latest.Version != 2 {
		t.Fatal("latest wrong")
	}
	if _, ok := l.Latest("nope"); ok {
		t.Fatal("phantom bundle")
	}
	if names := l.Names(); len(names) != 1 || names[0] != "a" {
		t.Fatalf("names = %v", names)
	}
}

func TestValidateRejectsBadBundles(t *testing.T) {
	l := New()
	cases := []Bundle{
		{Language: LangScript, Source: okScript},                  // no name
		{Name: "x", Language: LangScript},                         // no source
		{Name: "x", Language: LangScript, Source: "function ("},   // syntax error
		{Name: "x", Language: LangNative},                         // no analysis
		{Name: "x", Language: Language("java"), Source: okScript}, // unknown lang
	}
	for i, b := range cases {
		if _, err := l.Store(b); err == nil {
			t.Errorf("case %d accepted: %+v", i, b)
		}
	}
}

func TestInstantiateScript(t *testing.T) {
	b := &Bundle{Name: "s", Language: LangScript, Source: okScript, Decoder: "raw"}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	a, err := b.Instantiate(nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &analysis.Context{Tree: aida.NewTree()}
	if err := a.Init(ctx); err != nil {
		t.Fatal(err)
	}
	if err := a.Process([]byte("x"), ctx); err != nil {
		t.Fatal(err)
	}
}

func TestInstantiateNative(t *testing.T) {
	reg := analysis.NewRegistry()
	reg.Register("counter", func(params map[string]string) (analysis.Analysis, error) {
		return &analysis.Func{}, nil
	})
	b := &Bundle{Name: "n", Language: LangNative, Analysis: "counter"}
	a, err := b.Instantiate(reg)
	if err != nil || a == nil {
		t.Fatalf("instantiate: %v", err)
	}
	bad := &Bundle{Name: "n", Language: LangNative, Analysis: "ghost"}
	if _, err := bad.Instantiate(reg); err == nil {
		t.Fatal("unknown native analysis instantiated")
	}
}

func TestSizeBytesReflectsPayload(t *testing.T) {
	small := &Bundle{Name: "s", Language: LangScript, Source: "x"}
	big := &Bundle{Name: "s", Language: LangScript, Source: string(make([]byte, 15*1024))}
	if big.SizeBytes() <= small.SizeBytes() {
		t.Fatal("size not reflecting source")
	}
	if big.SizeBytes() < 15*1024 {
		t.Fatalf("15kb bundle reports %d bytes", big.SizeBytes())
	}
}
