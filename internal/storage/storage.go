// Package storage implements Grid storage elements: the rooted file stores
// behind the paper's "Grid Storage Element" and the "Shared Disk Space" of
// the compute element (Figure 2). A storage element is a directory tree
// with space accounting and se:// URL naming; the GridFTP server serves
// one, the splitter writes part files into one, and worker scratch areas
// are one per node.
package storage

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrQuota is returned when a write would exceed the element's capacity.
var ErrQuota = errors.New("storage: quota exceeded")

// Element is one storage element rooted at a directory.
type Element struct {
	name string
	root string

	mu    sync.Mutex
	quota int64 // bytes, 0 = unlimited
	used  int64
}

// New creates (or opens) a storage element rooted at dir.
func New(name, dir string) (*Element, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating root: %w", err)
	}
	e := &Element{name: name, root: dir}
	// Account for pre-existing content.
	used, err := duBytes(dir)
	if err != nil {
		return nil, err
	}
	e.used = used
	return e, nil
}

func duBytes(dir string) (int64, error) {
	var total int64
	err := filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			total += info.Size()
		}
		return nil
	})
	return total, err
}

// Name returns the element's logical name.
func (e *Element) Name() string { return e.name }

// Root returns the filesystem root.
func (e *Element) Root() string { return e.root }

// SetQuota bounds total stored bytes (0 = unlimited).
func (e *Element) SetQuota(bytes int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.quota = bytes
}

// Used returns the current accounted usage in bytes.
func (e *Element) Used() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.used
}

// URL renders the se:// name for a path on this element.
func (e *Element) URL(path string) string {
	return "se://" + e.name + "/" + strings.TrimPrefix(path, "/")
}

// resolve validates a logical path and maps it under the root,
// refusing escapes ("..").
func (e *Element) resolve(path string) (string, error) {
	clean := filepath.Clean("/" + strings.TrimPrefix(path, "/"))
	if strings.Contains(clean, "..") {
		return "", fmt.Errorf("storage: invalid path %q", path)
	}
	return filepath.Join(e.root, clean), nil
}

// Put streams r into path, replacing any existing file.
func (e *Element) Put(path string, r io.Reader) (int64, error) {
	full, err := e.resolve(path)
	if err != nil {
		return 0, err
	}
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		return 0, err
	}
	var old int64
	if st, err := os.Stat(full); err == nil {
		old = st.Size()
	}
	f, err := os.Create(full)
	if err != nil {
		return 0, err
	}
	n, err := io.Copy(f, &quotaReader{r: r, e: e, old: old})
	cerr := f.Close()
	if err != nil {
		os.Remove(full)
		e.account(-0) // usage recomputed below
		return n, err
	}
	if cerr != nil {
		return n, cerr
	}
	e.account(n - old)
	return n, nil
}

// quotaReader enforces the quota as bytes stream in.
type quotaReader struct {
	r    io.Reader
	e    *Element
	old  int64
	seen int64
}

func (q *quotaReader) Read(p []byte) (int, error) {
	n, err := q.r.Read(p)
	q.seen += int64(n)
	q.e.mu.Lock()
	over := q.e.quota > 0 && q.e.used-q.old+q.seen > q.e.quota
	q.e.mu.Unlock()
	if over {
		return n, ErrQuota
	}
	return n, err
}

func (e *Element) account(delta int64) {
	e.mu.Lock()
	e.used += delta
	if e.used < 0 {
		e.used = 0
	}
	e.mu.Unlock()
}

// PutBytes stores b at path.
func (e *Element) PutBytes(path string, b []byte) error {
	_, err := e.Put(path, strings.NewReader(string(b)))
	return err
}

// Open returns a reader and the size for path.
func (e *Element) Open(path string) (io.ReadSeekCloser, int64, error) {
	full, err := e.resolve(path)
	if err != nil {
		return nil, 0, err
	}
	f, err := os.Open(full)
	if err != nil {
		return nil, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	if st.IsDir() {
		f.Close()
		return nil, 0, fmt.Errorf("storage: %q is a directory", path)
	}
	return f, st.Size(), nil
}

// ReadBytes loads the whole file at path.
func (e *Element) ReadBytes(path string) ([]byte, error) {
	r, _, err := e.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return io.ReadAll(r)
}

// Size returns the byte size of path.
func (e *Element) Size(path string) (int64, error) {
	full, err := e.resolve(path)
	if err != nil {
		return 0, err
	}
	st, err := os.Stat(full)
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Exists reports whether path exists.
func (e *Element) Exists(path string) bool {
	full, err := e.resolve(path)
	if err != nil {
		return false
	}
	_, err = os.Stat(full)
	return err == nil
}

// LocalPath exposes the underlying filesystem path (for same-host readers
// like the analysis engine opening its staged part).
func (e *Element) LocalPath(path string) (string, error) { return e.resolve(path) }

// Delete removes path (file or empty directory).
func (e *Element) Delete(path string) error {
	full, err := e.resolve(path)
	if err != nil {
		return err
	}
	st, err := os.Stat(full)
	if err != nil {
		return err
	}
	if err := os.Remove(full); err != nil {
		return err
	}
	if !st.IsDir() {
		e.account(-st.Size())
	}
	return nil
}

// DeleteTree removes a whole subtree.
func (e *Element) DeleteTree(path string) error {
	full, err := e.resolve(path)
	if err != nil {
		return err
	}
	freed, err := duBytes(full)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	if err := os.RemoveAll(full); err != nil {
		return err
	}
	e.account(-freed)
	return nil
}

// List returns the entries under a directory path, sorted; directories get
// a trailing slash.
func (e *Element) List(path string) ([]string, error) {
	full, err := e.resolve(path)
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(full)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(entries))
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() {
			name += "/"
		}
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}
