// Package engine implements the analysis engine of §2.3/§3.5–3.6:
// "processes that accept a dataset and an analysis script and analyze the
// dataset using the script to produce a result." Engines run on worker
// nodes (as GRAM jobs), read their staged dataset part, feed records to
// the analysis code, publish intermediate AIDA snapshots to the manager,
// and obey the interactive controls of Figure 4: run, pause, resume, stop,
// rewind, step, and dynamic code reload.
package engine

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"github.com/ipa-grid/ipa/internal/aida"
	"github.com/ipa-grid/ipa/internal/analysis"
	"github.com/ipa-grid/ipa/internal/codeloader"
	"github.com/ipa-grid/ipa/internal/dataset"
	"github.com/ipa-grid/ipa/internal/merge"
)

// State is the engine's lifecycle position.
type State string

// Engine states.
const (
	StateIdle     State = "Idle"  // no dataset or no code yet
	StateReady    State = "Ready" // staged + loaded, not running
	StateRunning  State = "Running"
	StatePaused   State = "Paused"
	StateFinished State = "Finished" // processed the whole part
	StateError    State = "Error"
)

// Config wires one engine.
type Config struct {
	SessionID string
	WorkerID  string
	// Publisher receives snapshots: the AIDA manager, a sub-merger, or
	// a shard router fronting several manager shards — the engine's
	// uplink protocol is identical against all three.
	Publisher merge.Publisher
	// SnapshotEvery publishes after this many events (default 500).
	SnapshotEvery int
	// SnapshotInterval also publishes when this much time passed since
	// the last snapshot (default 1s) — the paper's sub-minute feedback.
	SnapshotInterval time.Duration
	// FullSnapshots publishes the whole tree on every snapshot (the
	// legacy path, kept selectable for the delta-vs-full ablation).
	// Default false: publish incremental deltas with a full baseline on
	// first publish, after rewind, and when the manager asks (NeedFull).
	FullSnapshots bool
	// CompressSnapshots ships compressed wire frames — the choice for
	// WAN-deployed workers where snapshot bytes dominate the link.
	CompressSnapshots bool
	// Registry resolves native analyses (nil = analysis.Default).
	Registry *analysis.Registry
	// GlobalOffset is the absolute index of the part's first record.
	GlobalOffset int64
}

// Engine is a single-goroutine event-loop worker; all control methods are
// safe to call from any goroutine.
type Engine struct {
	cfg Config

	mu      sync.Mutex
	cond    *sync.Cond
	state   State
	stopped bool // terminal shutdown

	partPath string
	reader   *dataset.Reader
	closer   io.Closer
	total    int64

	bundle        *codeloader.Bundle
	pendingBundle *codeloader.Bundle // swapped in at next rewind/run

	tree     *aida.Tree
	anal     analysis.Analysis
	ctx      *analysis.Context
	nextRec  int64
	stepLeft int64 // records remaining in a Step command (-1 = unlimited)
	lastErr  error
	lastSnap time.Time
	events   int64 // processed since init

	// transport owns the snapshot uplink protocol: generation stamps,
	// re-baselining after failures, and per-connection compression.
	transport *merge.Transport

	loopOnce sync.Once
	done     chan struct{}
}

// New creates an engine; call Serve (usually via the GRAM launcher) to
// start its loop.
func New(cfg Config) *Engine {
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 500
	}
	if cfg.SnapshotInterval <= 0 {
		cfg.SnapshotInterval = time.Second
	}
	e := &Engine{cfg: cfg, state: StateIdle, done: make(chan struct{})}
	e.cond = sync.NewCond(&e.mu)
	if cfg.Publisher != nil {
		e.transport = merge.NewTransport(cfg.SessionID, cfg.WorkerID, cfg.Publisher)
		e.transport.SetCompression(cfg.CompressSnapshots)
	}
	return e
}

// State returns the current state and last error.
func (e *Engine) State() (State, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.state, e.lastErr
}

// Progress reports processed and total record counts.
func (e *Engine) Progress() (done, total int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.events, e.total
}

// Rebaselines reports how many snapshot publishes after the first were
// forced to carry a full baseline (upstream NeedFull or a transport
// failure). A shard handoff that races a publish shows up here as a
// re-baseline or two (one per refused send while the session was
// sealed); a steadily climbing count means the uplink is flapping.
func (e *Engine) Rebaselines() int64 {
	if e.transport == nil {
		return 0
	}
	return e.transport.Rebaselines()
}

// SetPart points the engine at its staged dataset part (a container file
// on the worker's scratch disk).
func (e *Engine) SetPart(path string, globalOffset int64) error {
	r, f, err := dataset.Open(path)
	if err != nil {
		return fmt.Errorf("engine %s: opening part: %w", e.cfg.WorkerID, err)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closer != nil {
		e.closer.Close()
	}
	e.partPath = path
	e.reader = r
	e.closer = f
	e.total = r.NumRecords()
	e.cfg.GlobalOffset = globalOffset
	e.nextRec = 0
	e.events = 0
	if e.bundle != nil {
		e.state = StateReady
	}
	e.cond.Broadcast()
	return nil
}

// LoadCode installs an analysis bundle. While running, the new code takes
// effect at the next rewind (the paper reloads between iterations); when
// idle/ready it replaces immediately.
func (e *Engine) LoadCode(b *codeloader.Bundle) error {
	if b == nil {
		return errors.New("engine: nil bundle")
	}
	// Validate instantiation eagerly so upload errors surface now.
	if _, err := b.Instantiate(e.cfg.Registry); err != nil {
		return fmt.Errorf("engine %s: bundle %s v%d: %w", e.cfg.WorkerID, b.Name, b.Version, err)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	switch e.state {
	case StateRunning, StatePaused:
		e.pendingBundle = b
	default:
		e.bundle = b
		e.anal = nil // force re-init
		if e.reader != nil {
			e.state = StateReady
		}
	}
	e.cond.Broadcast()
	return nil
}

// Run starts (or resumes) processing the whole remaining part.
func (e *Engine) Run() error { return e.start(-1) }

// Step processes at most n records then pauses.
func (e *Engine) Step(n int64) error {
	if n <= 0 {
		return fmt.Errorf("engine: step of %d records", n)
	}
	return e.start(n)
}

func (e *Engine) start(limit int64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.stopped {
		return errors.New("engine: shut down")
	}
	switch e.state {
	case StateIdle:
		return errors.New("engine: no dataset part or code loaded")
	case StateError:
		return fmt.Errorf("engine: in error state: %v", e.lastErr)
	case StateRunning:
		e.stepLeft = limit
		return nil
	case StateFinished:
		return errors.New("engine: part finished; rewind to run again")
	}
	e.stepLeft = limit
	e.state = StateRunning
	e.cond.Broadcast()
	return nil
}

// Pause suspends processing after the current record.
func (e *Engine) Pause() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.state == StateRunning {
		e.state = StatePaused
		e.cond.Broadcast()
	}
	return nil
}

// Stop halts the run and rewinds to the beginning (the next Run starts
// over with fresh histograms).
func (e *Engine) Stop() error { return e.Rewind() }

// Rewind resets to record zero with fresh histograms and (if staged) the
// newest code bundle — "rewind to start the analysis from the beginning"
// (§3.6).
func (e *Engine) Rewind() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.stopped {
		return errors.New("engine: shut down")
	}
	if e.pendingBundle != nil {
		e.bundle = e.pendingBundle
		e.pendingBundle = nil
	}
	e.nextRec = 0
	e.events = 0
	e.anal = nil
	e.lastErr = nil
	if e.reader != nil && e.bundle != nil {
		e.state = StateReady
	} else {
		e.state = StateIdle
	}
	e.cond.Broadcast()
	return nil
}

// Shutdown terminates the engine loop (session teardown / job cancel).
func (e *Engine) Shutdown() {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	e.stopped = true
	if e.closer != nil {
		e.closer.Close()
		e.closer = nil
	}
	e.cond.Broadcast()
	e.mu.Unlock()
	<-e.done
}

// Serve runs the engine loop until Shutdown. It is the GRAM launcher
// payload; cancellation arrives as Shutdown from the job context.
func (e *Engine) Serve() {
	e.loopOnce.Do(func() {
		defer close(e.done)
		for {
			e.mu.Lock()
			for !e.stopped && e.state != StateRunning {
				e.cond.Wait()
			}
			if e.stopped {
				e.mu.Unlock()
				return
			}
			// Running: initialize if needed, then process one batch.
			if err := e.ensureInitLocked(); err != nil {
				e.failLocked(err)
				e.mu.Unlock()
				continue
			}
			e.mu.Unlock()
			e.processBatch()
		}
	})
}

// failLocked records an error and parks the engine. Caller holds mu.
func (e *Engine) failLocked(err error) {
	e.lastErr = err
	e.state = StateError
	e.cond.Broadcast()
}

// ensureInitLocked builds the analysis instance and tree. Caller holds mu.
func (e *Engine) ensureInitLocked() error {
	if e.anal != nil {
		return nil
	}
	if e.bundle == nil || e.reader == nil {
		return errors.New("engine: not staged")
	}
	a, err := e.bundle.Instantiate(e.cfg.Registry)
	if err != nil {
		return err
	}
	e.tree = aida.NewTree()
	e.ctx = &analysis.Context{
		Tree:     e.tree,
		Params:   e.bundle.Params,
		WorkerID: e.cfg.WorkerID,
	}
	if err := a.Init(e.ctx); err != nil {
		return fmt.Errorf("engine: analysis init: %w", err)
	}
	e.anal = a
	return nil
}

// batchSize bounds how many records are processed per lock cycle so
// controls stay responsive ("timescales of less than a minute" — we aim
// far lower).
const batchSize = 64

func (e *Engine) processBatch() {
	e.mu.Lock()
	if e.state != StateRunning || e.reader == nil {
		e.mu.Unlock()
		return
	}
	from := e.nextRec
	to := from + batchSize
	if e.stepLeft >= 0 && to-from > e.stepLeft {
		to = from + e.stepLeft
	}
	if to > e.total {
		to = e.total
	}
	reader := e.reader
	anal := e.anal
	ctx := e.ctx
	offset := e.cfg.GlobalOffset
	e.mu.Unlock()

	var processed int64
	var procErr error
	if to > from {
		it, err := reader.Iter(from, to)
		if err != nil {
			procErr = err
		} else {
			for {
				rec, err := it.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					procErr = err
					break
				}
				ctx.EventIndex = offset + from + processed
				if err := anal.Process(rec, ctx); err != nil {
					procErr = fmt.Errorf("record %d: %w", ctx.EventIndex, err)
					break
				}
				processed++
			}
		}
	}

	e.mu.Lock()
	e.nextRec = from + processed
	e.events += processed
	if e.stepLeft > 0 {
		e.stepLeft -= processed
	}
	finished := e.nextRec >= e.total
	stepDone := e.stepLeft == 0
	switch {
	case procErr != nil:
		e.lastErr = procErr
		e.state = StateError
	case finished:
		if err := anal.End(ctx); err != nil {
			e.lastErr = err
			e.state = StateError
		} else {
			e.state = StateFinished
		}
	case stepDone:
		e.state = StatePaused
	}
	if procErr != nil || finished || stepDone {
		// Wake WaitState callers; without this every wait burns its full
		// timeout even though the state already changed.
		e.cond.Broadcast()
	}
	needSnap := finished || stepDone || procErr != nil ||
		e.events%int64(e.cfg.SnapshotEvery) < processed ||
		time.Since(e.lastSnap) >= e.cfg.SnapshotInterval
	e.mu.Unlock()

	if needSnap {
		e.publish(procErr)
	}
}

// publish sends the current tree snapshot through the transport — a
// delta of what changed since the last snapshot by default, the whole
// tree in FullSnapshots mode or when a baseline is needed. Failures
// (snapshot construction or the upstream call) surface through lastErr
// so State() reports them; the transport re-baselines after a failed
// send, because the delta's dirty bits are already consumed.
func (e *Engine) publish(procErr error) {
	e.mu.Lock()
	if e.tree == nil || e.transport == nil {
		e.mu.Unlock()
		return
	}
	var logs []string
	if sa, ok := e.anal.(interface{ Output() string }); ok {
		if out := strings.TrimSpace(sa.Output()); out != "" {
			logs = append(logs, out)
		}
	}
	if procErr != nil {
		logs = append(logs, fmt.Sprintf("[%s] ERROR: %v", e.cfg.WorkerID, procErr))
	}
	log := strings.Join(logs, "\n")
	tr := e.transport
	e.lastSnap = time.Now()
	e.mu.Unlock()

	_, err := tr.Send(func(full bool) (merge.Snapshot, error) {
		e.mu.Lock()
		defer e.mu.Unlock()
		if e.tree == nil {
			return merge.Snapshot{}, fmt.Errorf("engine: tree gone before snapshot")
		}
		snap := merge.Snapshot{Done: e.events, Total: e.total, Log: log}
		if e.cfg.FullSnapshots {
			st, err := e.tree.State()
			if err != nil {
				return merge.Snapshot{}, err
			}
			snap.Tree = st
			return snap, nil
		}
		var d *aida.DeltaState
		var err error
		if full {
			d, err = e.tree.FullDelta()
		} else {
			d, err = e.tree.Delta()
		}
		if err != nil {
			return merge.Snapshot{}, err
		}
		snap.Delta = d
		return snap, nil
	})
	if err != nil {
		e.mu.Lock()
		if e.lastErr == nil {
			e.lastErr = fmt.Errorf("engine: snapshot: %w", err)
		}
		e.mu.Unlock()
	}
}

// WaitState blocks until the engine reaches one of the given states or
// the timeout passes, returning the state it saw last.
func (e *Engine) WaitState(timeout time.Duration, states ...State) (State, error) {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		e.mu.Lock()
		e.cond.Broadcast()
		e.mu.Unlock()
	})
	defer timer.Stop()
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		for _, s := range states {
			if e.state == s {
				return e.state, nil
			}
		}
		if e.stopped {
			return e.state, errors.New("engine: shut down")
		}
		if !time.Now().Before(deadline) {
			return e.state, fmt.Errorf("engine: still %s after %v", e.state, timeout)
		}
		e.cond.Wait()
	}
}
