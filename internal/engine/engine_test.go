package engine

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/ipa-grid/ipa/internal/aida"
	"github.com/ipa-grid/ipa/internal/analysis"
	"github.com/ipa-grid/ipa/internal/codeloader"
	"github.com/ipa-grid/ipa/internal/dataset"
	"github.com/ipa-grid/ipa/internal/events"
	"github.com/ipa-grid/ipa/internal/merge"
)

// makePart writes n LC events into a container and returns its path.
func makePart(t *testing.T, n int, seed int64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "part.ipa")
	if _, err := events.GenerateFile(path, events.GenConfig{Seed: seed}, n); err != nil {
		t.Fatal(err)
	}
	return path
}

func scriptBundle(t *testing.T, src string) *codeloader.Bundle {
	t.Helper()
	l := codeloader.New()
	b, err := l.Store(codeloader.Bundle{
		Name: "test", Language: codeloader.LangScript, Source: src, Decoder: events.EventDecoderName,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

const multiplicityScript = `
h = tree.h1d("/t", "mult", "multiplicity", 50, 0, 200);
function process(ev) { h.fill(ev.n); }
function end() { println("done:", h.entries()); }
`

func startEngine(t *testing.T, mgr *merge.Manager, part string, n int) *Engine {
	t.Helper()
	e := New(Config{
		SessionID: "s1", WorkerID: "w0", Publisher: mgr,
		SnapshotEvery: 100, SnapshotInterval: time.Hour, // deterministic snapshots
	})
	go e.Serve()
	t.Cleanup(e.Shutdown)
	if part != "" {
		if err := e.SetPart(part, 0); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func TestRunToFinish(t *testing.T) {
	mgr := merge.NewManager()
	part := makePart(t, 300, 1)
	e := startEngine(t, mgr, part, 300)
	if err := e.LoadCode(scriptBundle(t, multiplicityScript)); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if st, err := e.WaitState(10*time.Second, StateFinished); err != nil || st != StateFinished {
		t.Fatalf("state %v, %v", st, err)
	}
	done, total := e.Progress()
	if done != 300 || total != 300 {
		t.Fatalf("progress %d/%d", done, total)
	}
	var poll merge.PollReply
	if err := mgr.Poll(merge.PollArgs{SessionID: "s1"}, &poll); err != nil {
		t.Fatal(err)
	}
	var hist *aida.Histogram1D
	for _, ent := range poll.Entries {
		if ent.Path == "/t/mult" {
			obj, _ := ent.Restore()
			hist = obj.(*aida.Histogram1D)
		}
	}
	if hist == nil || hist.AllEntries() != 300 {
		t.Fatalf("merged histogram = %+v", hist)
	}
	joined := strings.Join(poll.Logs, "\n")
	if !strings.Contains(joined, "done:") {
		t.Fatalf("script output not relayed: %q", joined)
	}
}

func TestRunRequiresStaging(t *testing.T) {
	mgr := merge.NewManager()
	e := startEngine(t, mgr, "", 0)
	if err := e.Run(); err == nil {
		t.Fatal("run without staging accepted")
	}
}

func TestStepAndPauseResume(t *testing.T) {
	mgr := merge.NewManager()
	part := makePart(t, 500, 2)
	e := startEngine(t, mgr, part, 500)
	if err := e.LoadCode(scriptBundle(t, multiplicityScript)); err != nil {
		t.Fatal(err)
	}
	if err := e.Step(120); err != nil {
		t.Fatal(err)
	}
	if st, err := e.WaitState(10*time.Second, StatePaused); err != nil || st != StatePaused {
		t.Fatalf("state after step: %v %v", st, err)
	}
	done, _ := e.Progress()
	if done != 120 {
		t.Fatalf("step processed %d, want 120", done)
	}
	// Resume to the end.
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.WaitState(10*time.Second, StateFinished); err != nil {
		t.Fatal(err)
	}
	done, _ = e.Progress()
	if done != 500 {
		t.Fatalf("final processed %d", done)
	}
}

func TestRewindResetsAndReruns(t *testing.T) {
	mgr := merge.NewManager()
	part := makePart(t, 200, 3)
	e := startEngine(t, mgr, part, 200)
	e.LoadCode(scriptBundle(t, multiplicityScript))
	e.Run()
	e.WaitState(10*time.Second, StateFinished)
	if err := e.Rewind(); err != nil {
		t.Fatal(err)
	}
	done, _ := e.Progress()
	if done != 0 {
		t.Fatalf("progress after rewind = %d", done)
	}
	e.Run()
	if _, err := e.WaitState(10*time.Second, StateFinished); err != nil {
		t.Fatal(err)
	}
	done, _ = e.Progress()
	if done != 200 {
		t.Fatalf("re-run processed %d", done)
	}
}

func TestHotCodeReloadAtRewind(t *testing.T) {
	mgr := merge.NewManager()
	part := makePart(t, 100, 4)
	e := startEngine(t, mgr, part, 100)
	e.LoadCode(scriptBundle(t, multiplicityScript))
	e.Run()
	e.WaitState(10*time.Second, StateFinished)

	v2 := scriptBundle(t, `
		h = tree.h1d("/t", "energy", "total energy", 50, 0, 1000);
		function process(ev) {
			tot = 0;
			for (p : ev.particles) tot += p.e;
			h.fill(tot);
		}
	`)
	if err := e.LoadCode(v2); err != nil {
		t.Fatal(err)
	}
	e.Rewind()
	e.Run()
	if _, err := e.WaitState(10*time.Second, StateFinished); err != nil {
		t.Fatal(err)
	}
	var poll merge.PollReply
	mgr.Poll(merge.PollArgs{SessionID: "s1"}, &poll)
	var paths []string
	for _, ent := range poll.Entries {
		paths = append(paths, ent.Path)
	}
	found := false
	for _, p := range paths {
		if p == "/t/energy" {
			found = true
		}
	}
	if !found {
		t.Fatalf("new code's histogram missing; merged paths %v", paths)
	}
}

func TestBadScriptSurfacesAsError(t *testing.T) {
	mgr := merge.NewManager()
	part := makePart(t, 50, 5)
	e := startEngine(t, mgr, part, 50)
	// Script fails on the 10th event.
	b := scriptBundle(t, `
		n = 0;
		function process(ev) {
			n += 1;
			if (n == 10) error("exploding on event " + n);
		}
	`)
	e.LoadCode(b)
	e.Run()
	st, _ := e.WaitState(10*time.Second, StateError)
	if st != StateError {
		t.Fatalf("state = %v, want Error", st)
	}
	_, lastErr := e.State()
	if lastErr == nil || !strings.Contains(lastErr.Error(), "exploding") {
		t.Fatalf("lastErr = %v", lastErr)
	}
	// Error is recoverable via rewind (fix code and rerun).
	if err := e.Rewind(); err != nil {
		t.Fatal(err)
	}
	e.LoadCode(scriptBundle(t, multiplicityScript))
	e.Run()
	if _, err := e.WaitState(10*time.Second, StateFinished); err != nil {
		t.Fatal(err)
	}
}

func TestUninstantiableBundleRejectedEagerly(t *testing.T) {
	mgr := merge.NewManager()
	part := makePart(t, 10, 6)
	e := startEngine(t, mgr, part, 10)
	bad := &codeloader.Bundle{
		Name: "x", Language: codeloader.LangScript,
		Source: "function process(e) {}", Decoder: "no-such-decoder",
	}
	if err := e.LoadCode(bad); err == nil {
		t.Fatal("bundle with unknown decoder accepted")
	}
}

func TestNativeAnalysisBundle(t *testing.T) {
	mgr := merge.NewManager()
	part := makePart(t, 400, 7)
	e := startEngine(t, mgr, part, 400)
	b := &codeloader.Bundle{
		Name: "higgs", Language: codeloader.LangNative,
		Analysis: events.HiggsAnalysisName, Params: map[string]string{"minE": "20"},
	}
	if err := e.LoadCode(b); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if _, err := e.WaitState(20*time.Second, StateFinished); err != nil {
		t.Fatal(err)
	}
	var poll merge.PollReply
	mgr.Poll(merge.PollArgs{SessionID: "s1"}, &poll)
	found := false
	for _, ent := range poll.Entries {
		if ent.Path == "/higgs/dijet-mass" {
			obj, _ := ent.Restore()
			if obj.(*aida.Histogram1D).Entries() > 0 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("native Higgs analysis produced no mass histogram")
	}
}

// unserializable is an AIDA object StateOf cannot encode, so snapshot
// construction fails deterministically.
type unserializable struct{ ann *aida.Annotation }

func (u *unserializable) Name() string                  { return "u" }
func (u *unserializable) Kind() string                  { return "Mystery" }
func (u *unserializable) Annotations() *aida.Annotation { return u.ann }
func (u *unserializable) EntriesCount() int64           { return 0 }

type badObjectAnalysis struct{}

func (badObjectAnalysis) Init(ctx *analysis.Context) error {
	return ctx.Tree.PutAt("/bad/u", &unserializable{ann: aida.NewAnnotation()})
}
func (badObjectAnalysis) Process(record []byte, ctx *analysis.Context) error { return nil }
func (badObjectAnalysis) End(ctx *analysis.Context) error                    { return nil }

// TestSnapshotBuildErrorSurfaced: a snapshot that cannot be constructed
// (unserializable object in the tree) must not vanish silently — it has
// to surface through State()'s error.
func TestSnapshotBuildErrorSurfaced(t *testing.T) {
	reg := analysis.NewRegistry()
	reg.Register("bad-object", func(map[string]string) (analysis.Analysis, error) {
		return badObjectAnalysis{}, nil
	})
	mgr := merge.NewManager()
	part := makePart(t, 50, 8)
	e := New(Config{
		SessionID: "s1", WorkerID: "w0", Publisher: mgr, Registry: reg,
		SnapshotEvery: 10, SnapshotInterval: time.Hour,
	})
	go e.Serve()
	t.Cleanup(e.Shutdown)
	if err := e.SetPart(part, 0); err != nil {
		t.Fatal(err)
	}
	b := &codeloader.Bundle{Name: "bad", Language: codeloader.LangNative, Analysis: "bad-object"}
	if err := e.LoadCode(b); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.WaitState(10*time.Second, StateFinished); err != nil {
		t.Fatal(err)
	}
	_, lastErr := e.State()
	if lastErr == nil || !strings.Contains(lastErr.Error(), "snapshot") {
		t.Fatalf("snapshot-build failure not surfaced: lastErr = %v", lastErr)
	}
}

func TestGlobalOffsetVisibleToContext(t *testing.T) {
	// Verify the engine passes absolute event indices via dataset records.
	dir := t.TempDir()
	path := filepath.Join(dir, "p.ipa")
	w, closer, err := dataset.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		w.Append([]byte{byte(i)})
	}
	closer()
	mgr := merge.NewManager()
	e := New(Config{SessionID: "s", WorkerID: "w", Publisher: mgr, SnapshotEvery: 1000, SnapshotInterval: time.Hour})
	go e.Serve()
	defer e.Shutdown()
	if err := e.SetPart(path, 500); err != nil {
		t.Fatal(err)
	}
	b := scriptBundle(t, `
		c = tree.c1d("/t", "indices", "");
		function process(r) { c.fill(len(r)); }
	`)
	// Use the raw decoder: override the bundle decoder.
	b.Decoder = "raw"
	if err := e.LoadCode(b); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if _, err := e.WaitState(10*time.Second, StateFinished); err != nil {
		t.Fatal(err)
	}
	done, total := e.Progress()
	if done != 10 || total != 10 {
		t.Fatalf("progress %d/%d", done, total)
	}
}
