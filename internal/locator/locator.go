// Package locator implements the Locator service of §2.2/§3.4: "the
// locator service ... will resolve the location of the dataset from the
// dataset identifier. The location could be a URL to an FTP server or a
// set of contiguous records in a database server. In addition to the
// location of the dataset, the locator service returns the location of
// the splitter service."
//
// Datasets have replicas at sites; resolution prefers replicas co-located
// with the requesting site (the paper's observation that LAN staging beats
// WAN staging is exactly a replica-selection decision).
package locator

import (
	"fmt"
	"sort"
	"sync"
)

// Replica is one physical copy of a dataset.
type Replica struct {
	// URL locates the copy, e.g. "gsiftp://host:port/path" or
	// "file:///shared/disk/path".
	URL string
	// Site names the hosting site; staging within the same site runs
	// over the LAN.
	Site string
	// Priority breaks ties (higher preferred).
	Priority int
}

// Resolution answers a lookup: ordered replicas plus the splitter
// endpoint that should cut this dataset.
type Resolution struct {
	DatasetID string
	Replicas  []Replica // best first
	// SplitterEndpoint addresses the splitter service to use (§3.4).
	SplitterEndpoint string
}

// Service is the locator registry. Safe for concurrent use.
type Service struct {
	mu       sync.RWMutex
	replicas map[string][]Replica
	splitter map[string]string // dataset ID → splitter endpoint
	defSplit string
}

// New creates a locator with a default splitter endpoint.
func New(defaultSplitter string) *Service {
	return &Service{
		replicas: make(map[string][]Replica),
		splitter: make(map[string]string),
		defSplit: defaultSplitter,
	}
}

// Register adds a replica for a dataset.
func (s *Service) Register(datasetID string, r Replica) error {
	if datasetID == "" || r.URL == "" {
		return fmt.Errorf("locator: dataset ID and URL required")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, existing := range s.replicas[datasetID] {
		if existing.URL == r.URL {
			return fmt.Errorf("locator: replica %s already registered for %s", r.URL, datasetID)
		}
	}
	s.replicas[datasetID] = append(s.replicas[datasetID], r)
	return nil
}

// Unregister drops a replica by URL; it reports whether it existed.
func (s *Service) Unregister(datasetID, url string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	reps := s.replicas[datasetID]
	for i, r := range reps {
		if r.URL == url {
			s.replicas[datasetID] = append(reps[:i], reps[i+1:]...)
			return true
		}
	}
	return false
}

// SetSplitter overrides the splitter endpoint for one dataset.
func (s *Service) SetSplitter(datasetID, endpoint string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.splitter[datasetID] = endpoint
}

// Resolve returns replicas ordered best-first for a requesting site:
// same-site replicas first (by priority), then others (by priority).
func (s *Service) Resolve(datasetID, requestingSite string) (Resolution, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	reps := s.replicas[datasetID]
	if len(reps) == 0 {
		return Resolution{}, fmt.Errorf("locator: no replicas for dataset %q", datasetID)
	}
	ordered := append([]Replica(nil), reps...)
	sort.SliceStable(ordered, func(i, j int) bool {
		li, lj := ordered[i].Site == requestingSite, ordered[j].Site == requestingSite
		if li != lj {
			return li
		}
		if ordered[i].Priority != ordered[j].Priority {
			return ordered[i].Priority > ordered[j].Priority
		}
		return ordered[i].URL < ordered[j].URL
	})
	split := s.splitter[datasetID]
	if split == "" {
		split = s.defSplit
	}
	return Resolution{DatasetID: datasetID, Replicas: ordered, SplitterEndpoint: split}, nil
}

// Known reports whether any replica exists for the dataset.
func (s *Service) Known(datasetID string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.replicas[datasetID]) > 0
}
