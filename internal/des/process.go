package des

// This file provides small composition helpers for building sequential
// "processes" out of event callbacks without goroutines: a Seq runs a list
// of stages where each stage decides how long it takes, and a Barrier joins
// parallel activities.

// Seq chains virtual-time stages. Each stage returns the virtual duration
// it consumes; the next stage starts when the previous one finishes.
// A stage may also schedule its own events; Seq only provides the common
// "phase pipeline" shape used by the staging experiments.
type Seq struct {
	k      *Kernel
	stages []func() Time
	done   func()
}

// NewSeq returns a sequence bound to kernel k that calls done (if non-nil)
// when the final stage completes.
func NewSeq(k *Kernel, done func()) *Seq { return &Seq{k: k, done: done} }

// Then appends a stage and returns the sequence for chaining.
func (s *Seq) Then(stage func() Time) *Seq {
	s.stages = append(s.stages, stage)
	return s
}

// Start begins executing stages at the current virtual time.
func (s *Seq) Start() {
	s.next(0)
}

func (s *Seq) next(i int) {
	if i >= len(s.stages) {
		if s.done != nil {
			s.done()
		}
		return
	}
	d := s.stages[i]()
	if d < 0 {
		d = 0
	}
	s.k.After(d, func() { s.next(i + 1) })
}

// Barrier invokes done once Arrive has been called n times.
// It is the DES analogue of sync.WaitGroup for event callbacks.
type Barrier struct {
	remaining int
	done      func()
}

// NewBarrier returns a barrier expecting n arrivals.
func NewBarrier(n int, done func()) *Barrier {
	b := &Barrier{remaining: n, done: done}
	if n == 0 && done != nil {
		done()
	}
	return b
}

// Arrive records one arrival; the final arrival runs the completion callback
// synchronously.
func (b *Barrier) Arrive() {
	if b.remaining <= 0 {
		panic("des: Barrier.Arrive called more times than size")
	}
	b.remaining--
	if b.remaining == 0 && b.done != nil {
		b.done()
	}
}

// Remaining reports how many arrivals are still expected.
func (b *Barrier) Remaining() int { return b.remaining }
