// Package des provides a deterministic discrete-event simulation kernel.
//
// The kernel drives the performance experiments that regenerate the paper's
// evaluation (Tables 1-2, Figure 5): network transfers, scheduler queues and
// analysis engines are modelled as events on a virtual clock, so a 45-minute
// wide-area staging run completes in microseconds of wall time while
// preserving the exact ordering and durations of the modelled system.
//
// Events scheduled for the same virtual time fire in a stable order
// (by insertion sequence), which makes every simulation replayable.
package des

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, measured in seconds from simulation start.
// float64 seconds keeps the arithmetic in the same units as the paper's
// tables and avoids overflow for week-long simulated horizons.
type Time float64

// Duration returns t as a time.Duration (useful for reporting only).
func (t Time) Duration() time.Duration { return time.Duration(float64(t) * float64(time.Second)) }

// String formats the time like the paper's tables (seconds, 1 decimal).
func (t Time) String() string { return fmt.Sprintf("%.1fs", float64(t)) }

// Event is a scheduled callback.
type Event struct {
	at     Time
	seq    uint64 // tie-break: FIFO among equal timestamps
	fn     func()
	index  int // heap index; -1 when not queued
	dead   bool
	kernel *Kernel
}

// At returns the virtual time the event fires at.
func (e *Event) At() Time { return e.at }

// Cancel removes the event from the queue; firing a cancelled event is a no-op.
// Cancel is idempotent and safe to call after the event has fired.
func (e *Event) Cancel() {
	if e == nil || e.dead {
		return
	}
	e.dead = true
	if e.index >= 0 {
		heap.Remove(&e.kernel.queue, e.index)
	}
}

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Kernel is a single-threaded discrete-event simulator.
// It is not safe for concurrent use; model code runs inside event callbacks.
type Kernel struct {
	now    Time
	queue  eventQueue
	seq    uint64
	fired  uint64
	budget uint64 // max events per Run, 0 = unlimited
}

// New returns an empty kernel at virtual time zero.
func New() *Kernel { return &Kernel{} }

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Fired reports how many events have executed so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// SetEventBudget bounds the number of events a single Run may fire;
// exceeded budgets cause Run to return an error instead of spinning forever.
func (k *Kernel) SetEventBudget(n uint64) { k.budget = n }

// At schedules fn at absolute virtual time at. Scheduling in the past
// (before Now) panics: it would silently corrupt causality.
func (k *Kernel) At(at Time, fn func()) *Event {
	if at < k.now {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", at, k.now))
	}
	if math.IsNaN(float64(at)) || math.IsInf(float64(at), 0) {
		panic(fmt.Sprintf("des: scheduling event at non-finite time %v", float64(at)))
	}
	e := &Event{at: at, seq: k.seq, fn: fn, index: -1, kernel: k}
	k.seq++
	heap.Push(&k.queue, e)
	return e
}

// After schedules fn after d seconds of virtual time.
func (k *Kernel) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("des: negative delay %v", d))
	}
	return k.At(k.now+d, fn)
}

// Pending reports the number of queued (non-cancelled) events.
func (k *Kernel) Pending() int {
	n := 0
	for _, e := range k.queue {
		if !e.dead {
			n++
		}
	}
	return n
}

// Step fires the single earliest event. It reports false when the queue
// is empty.
func (k *Kernel) Step() bool {
	for len(k.queue) > 0 {
		e := heap.Pop(&k.queue).(*Event)
		if e.dead {
			continue
		}
		k.now = e.at
		e.dead = true
		k.fired++
		e.fn()
		return true
	}
	return false
}

// Run fires events until the queue drains. It returns an error if the
// configured event budget is exhausted, which almost always indicates a
// model that reschedules itself unconditionally.
func (k *Kernel) Run() error {
	start := k.fired
	for k.Step() {
		if k.budget != 0 && k.fired-start > k.budget {
			return fmt.Errorf("des: event budget %d exhausted at t=%v", k.budget, k.now)
		}
	}
	return nil
}

// RunUntil fires events with timestamps ≤ deadline, then advances the clock
// to exactly deadline. Events after the deadline remain queued.
func (k *Kernel) RunUntil(deadline Time) {
	for len(k.queue) > 0 {
		// Peek.
		e := k.queue[0]
		if e.dead {
			heap.Pop(&k.queue)
			continue
		}
		if e.at > deadline {
			break
		}
		k.Step()
	}
	if k.now < deadline {
		k.now = deadline
	}
}
