package des

import (
	"testing"
)

func TestKernelOrdering(t *testing.T) {
	k := New()
	var got []int
	k.At(3, func() { got = append(got, 3) })
	k.At(1, func() { got = append(got, 1) })
	k.At(2, func() { got = append(got, 2) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if k.Now() != 3 {
		t.Fatalf("now = %v, want 3", k.Now())
	}
}

func TestKernelFIFOAtSameTime(t *testing.T) {
	k := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5, func() { got = append(got, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events fired out of insertion order: %v", got)
		}
	}
}

func TestKernelAfterRelative(t *testing.T) {
	k := New()
	var at Time
	k.After(2, func() {
		k.After(3, func() { at = k.Now() })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 5 {
		t.Fatalf("nested After fired at %v, want 5", at)
	}
}

func TestKernelCancel(t *testing.T) {
	k := New()
	fired := false
	e := k.At(1, func() { fired = true })
	e.Cancel()
	e.Cancel() // idempotent
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
	if k.Fired() != 0 {
		t.Fatalf("fired count = %d, want 0", k.Fired())
	}
}

func TestKernelCancelDuringRun(t *testing.T) {
	k := New()
	var second *Event
	fired := false
	k.At(1, func() { second.Cancel() })
	second = k.At(2, func() { fired = true })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("event cancelled mid-run still fired")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := New()
	k.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(1, func() {})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEventBudget(t *testing.T) {
	k := New()
	k.SetEventBudget(100)
	var loop func()
	loop = func() { k.After(1, loop) }
	k.After(1, loop)
	if err := k.Run(); err == nil {
		t.Fatal("runaway simulation did not trip the event budget")
	}
}

func TestRunUntil(t *testing.T) {
	k := New()
	var fired []Time
	for _, at := range []Time{1, 2, 3, 10} {
		at := at
		k.At(at, func() { fired = append(fired, at) })
	}
	k.RunUntil(5)
	if len(fired) != 3 {
		t.Fatalf("fired %v, want events at 1,2,3 only", fired)
	}
	if k.Now() != 5 {
		t.Fatalf("now = %v, want exactly 5", k.Now())
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", k.Pending())
	}
}

func TestSeqPipeline(t *testing.T) {
	k := New()
	var doneAt Time
	var order []string
	NewSeq(k, func() { doneAt = k.Now() }).
		Then(func() Time { order = append(order, "a"); return 10 }).
		Then(func() Time { order = append(order, "b"); return 5 }).
		Then(func() Time { order = append(order, "c"); return 0 }).
		Start()
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != 15 {
		t.Fatalf("sequence finished at %v, want 15", doneAt)
	}
	if len(order) != 3 || order[0] != "a" || order[2] != "c" {
		t.Fatalf("stage order %v", order)
	}
}

func TestBarrier(t *testing.T) {
	done := false
	b := NewBarrier(3, func() { done = true })
	b.Arrive()
	b.Arrive()
	if done {
		t.Fatal("barrier released early")
	}
	b.Arrive()
	if !done {
		t.Fatal("barrier never released")
	}
}

func TestBarrierZero(t *testing.T) {
	done := false
	NewBarrier(0, func() { done = true })
	if !done {
		t.Fatal("zero barrier should release immediately")
	}
}

func TestBarrierOverArrivePanics(t *testing.T) {
	b := NewBarrier(1, nil)
	b.Arrive()
	defer func() {
		if recover() == nil {
			t.Error("over-arrival did not panic")
		}
	}()
	b.Arrive()
}
