package gridftp

import "os"

func osWriteFile(path string, b []byte) error { return os.WriteFile(path, b, 0o644) }

func osReadFile(path string) ([]byte, error) { return os.ReadFile(path) }
