package gridftp

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"path/filepath"
	"testing"

	"github.com/ipa-grid/ipa/internal/storage"
)

func newServer(t *testing.T, check TokenChecker) (*Server, *storage.Element, string) {
	t.Helper()
	store, err := storage.New("se-test", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store, check)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, store, addr
}

func randBytes(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestStoreAndRetrieve(t *testing.T) {
	_, store, addr := newServer(t, nil)
	c, err := Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	payload := randBytes(3*blockSize+12345, 1) // multiple blocks + remainder
	if err := c.StoreBytes("/data/part0.ipa", payload); err != nil {
		t.Fatal(err)
	}
	onDisk, err := store.ReadBytes("/data/part0.ipa")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, payload) {
		t.Fatal("stored bytes differ")
	}
	got, err := c.RetrieveBytes("/data/part0.ipa")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("retrieved bytes differ")
	}
}

func TestParallelStreamCounts(t *testing.T) {
	_, _, addr := newServer(t, nil)
	for _, streams := range []int{1, 2, 8} {
		c, err := Dial(addr, "")
		if err != nil {
			t.Fatal(err)
		}
		if err := c.SetParallel(streams); err != nil {
			t.Fatal(err)
		}
		payload := randBytes(2*blockSize+99, int64(streams))
		path := fmt.Sprintf("/p%d.bin", streams)
		if err := c.StoreBytes(path, payload); err != nil {
			t.Fatalf("streams=%d: %v", streams, err)
		}
		got, err := c.RetrieveBytes(path)
		if err != nil {
			t.Fatalf("streams=%d: %v", streams, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("streams=%d: corrupted", streams)
		}
		c.Close()
	}
}

func TestEmptyFile(t *testing.T) {
	_, _, addr := newServer(t, nil)
	c, _ := Dial(addr, "")
	defer c.Close()
	if err := c.StoreBytes("/empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err := c.RetrieveBytes("/empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d bytes", len(got))
	}
}

func TestSizeAndChecksum(t *testing.T) {
	_, store, addr := newServer(t, nil)
	payload := randBytes(10000, 7)
	if err := store.PutBytes("/f.bin", payload); err != nil {
		t.Fatal(err)
	}
	c, _ := Dial(addr, "")
	defer c.Close()
	size, err := c.Size("/f.bin")
	if err != nil || size != 10000 {
		t.Fatalf("Size = %d, %v", size, err)
	}
	sum, err := c.Checksum("/f.bin")
	if err != nil || sum != crc32.ChecksumIEEE(payload) {
		t.Fatalf("Checksum = %08x, %v", sum, err)
	}
	if err := c.VerifyTransfer("/f.bin", payload); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyTransfer("/f.bin", payload[1:]); err == nil {
		t.Fatal("corrupt verify passed")
	}
	if _, err := c.Size("/missing"); err == nil {
		t.Fatal("SIZE of missing file succeeded")
	}
}

func TestAuthRequired(t *testing.T) {
	check := func(token string) error {
		if token != "sesame" {
			return errors.New("wrong token")
		}
		return nil
	}
	_, _, addr := newServer(t, check)
	if _, err := Dial(addr, "wrong"); err == nil {
		t.Fatal("bad token accepted")
	}
	c, err := Dial(addr, "sesame")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.StoreBytes("/ok", []byte("hi")); err != nil {
		t.Fatal(err)
	}
}

func TestThirdPartyTransfer(t *testing.T) {
	// Source server (the manager's shared disk) pushes to a destination
	// server (a worker scratch area) — the §3.4 staging path.
	_, srcStore, srcAddr := newServer(t, nil)
	_, dstStore, dstAddr := newServer(t, nil)
	payload := randBytes(2*blockSize+500, 42)
	if err := srcStore.PutBytes("/dataset/part3", payload); err != nil {
		t.Fatal(err)
	}
	c, _ := Dial(srcAddr, "")
	defer c.Close()
	n, err := c.ThirdParty("/dataset/part3", dstAddr, "/scratch/part3", "")
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(payload)) {
		t.Fatalf("transferred %d, want %d", n, len(payload))
	}
	got, err := dstStore.ReadBytes("/scratch/part3")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("third-party corrupted data")
	}
}

func TestRetrieveMissing(t *testing.T) {
	_, _, addr := newServer(t, nil)
	c, _ := Dial(addr, "")
	defer c.Close()
	if _, err := c.RetrieveBytes("/nope"); err == nil {
		t.Fatal("RETR of missing file succeeded")
	}
	// Connection still usable.
	if err := c.StoreBytes("/after", []byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestStoreRetrieveFiles(t *testing.T) {
	_, _, addr := newServer(t, nil)
	c, _ := Dial(addr, "")
	defer c.Close()
	dir := t.TempDir()
	local := filepath.Join(dir, "in.bin")
	payload := randBytes(blockSize+77, 5)
	if err := writeFile(local, payload); err != nil {
		t.Fatal(err)
	}
	if err := c.StoreFile("/files/in.bin", local); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.bin")
	n, err := c.RetrieveFile("/files/in.bin", out)
	if err != nil || n != int64(len(payload)) {
		t.Fatalf("RetrieveFile = %d, %v", n, err)
	}
	got, err := readFile(out)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatal("file round trip corrupted")
	}
}

func TestStorageQuota(t *testing.T) {
	store, err := storage.New("small", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	store.SetQuota(1000)
	if err := store.PutBytes("/a", make([]byte, 600)); err != nil {
		t.Fatal(err)
	}
	if err := store.PutBytes("/b", make([]byte, 600)); err == nil {
		t.Fatal("quota not enforced")
	}
	// Replacing a file reuses its allocation.
	if err := store.PutBytes("/a", make([]byte, 900)); err != nil {
		t.Fatalf("replace within quota failed: %v", err)
	}
}

func TestStoragePathEscapeRejected(t *testing.T) {
	store, _ := storage.New("s", t.TempDir())
	if err := store.PutBytes("../../escape", []byte("x")); err == nil {
		// filepath.Clean of "/../../escape" is "/escape" — confined.
		if store.Exists("../../escape") {
			p, _ := store.LocalPath("../../escape")
			if !bytes.HasPrefix([]byte(p), []byte(store.Root())) {
				t.Fatal("path escaped the root")
			}
		}
	}
}

func writeFile(path string, b []byte) error {
	return osWriteFile(path, b)
}

func readFile(path string) ([]byte, error) {
	return osReadFile(path)
}
