package gridftp

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Client drives one GridFTP control connection.
type Client struct {
	mu       sync.Mutex
	conn     net.Conn
	r        *bufio.Reader
	w        *bufio.Writer
	host     string
	parallel int
}

// Dial connects and authenticates with the session token.
func Dial(addr, token string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 30*time.Second)
	if err != nil {
		return nil, fmt.Errorf("gridftp: dialing %s: %w", addr, err)
	}
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		host = "127.0.0.1"
	}
	c := &Client{
		conn: conn, host: host,
		r: bufio.NewReader(conn), w: bufio.NewWriter(conn),
		parallel: DefaultParallelism,
	}
	if _, _, err := c.readReply(); err != nil { // 220 banner
		conn.Close()
		return nil, err
	}
	if code, msg, err := c.cmd("AUTH %s", token); err != nil || code != 230 {
		conn.Close()
		if err == nil {
			err = fmt.Errorf("gridftp: auth rejected: %s", msg)
		}
		return nil, err
	}
	return c, nil
}

// Close sends QUIT and closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	fmt.Fprintf(c.w, "QUIT\r\n")
	c.w.Flush()
	err := c.conn.Close()
	c.conn = nil
	return err
}

func (c *Client) cmd(format string, args ...any) (int, string, error) {
	fmt.Fprintf(c.w, format+"\r\n", args...)
	if err := c.w.Flush(); err != nil {
		return 0, "", err
	}
	return c.readReply()
}

func (c *Client) readReply() (int, string, error) {
	line, err := c.r.ReadString('\n')
	if err != nil {
		return 0, "", fmt.Errorf("gridftp: reading reply: %w", err)
	}
	line = strings.TrimSpace(line)
	if len(line) < 3 {
		return 0, "", fmt.Errorf("gridftp: short reply %q", line)
	}
	code, err := strconv.Atoi(line[:3])
	if err != nil {
		return 0, "", fmt.Errorf("gridftp: bad reply %q", line)
	}
	msg := strings.TrimSpace(line[3:])
	return code, msg, nil
}

// SetParallel negotiates the data-stream count for following transfers.
func (c *Client) SetParallel(n int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	code, msg, err := c.cmd("PARALLEL %d", n)
	if err != nil {
		return err
	}
	if code != 200 {
		return fmt.Errorf("gridftp: PARALLEL rejected: %s", msg)
	}
	c.parallel = n
	return nil
}

// Size queries a remote file's size.
func (c *Client) Size(path string) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	code, msg, err := c.cmd("SIZE %s", path)
	if err != nil {
		return 0, err
	}
	if code != 213 {
		return 0, fmt.Errorf("gridftp: SIZE %s: %s", path, msg)
	}
	return strconv.ParseInt(msg, 10, 64)
}

// Checksum queries a remote file's CRC32.
func (c *Client) Checksum(path string) (uint32, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	code, msg, err := c.cmd("CKSM %s", path)
	if err != nil {
		return 0, err
	}
	if code != 213 {
		return 0, fmt.Errorf("gridftp: CKSM %s: %s", path, msg)
	}
	v, err := strconv.ParseUint(msg, 16, 32)
	return uint32(v), err
}

// StoreFrom uploads size bytes from ra to the remote path using the
// negotiated number of parallel streams.
func (c *Client) StoreFrom(path string, ra io.ReaderAt, size int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	code, msg, err := c.cmd("STOR %s %d", path, size)
	if err != nil {
		return err
	}
	if code != 150 {
		return fmt.Errorf("gridftp: STOR %s: %s", path, msg)
	}
	fields := strings.Fields(msg)
	if len(fields) != 2 {
		return fmt.Errorf("gridftp: malformed STOR grant %q", msg)
	}
	xferID, port := fields[0], fields[1]

	if size == 0 {
		// Nothing to move: the server completes immediately and may
		// already have closed its data listener.
		code, msg, err = c.readReply()
		if err != nil {
			return err
		}
		if code != 226 {
			return fmt.Errorf("gridftp: STOR %s failed: %s", path, msg)
		}
		return nil
	}

	streams := c.parallel
	var wg sync.WaitGroup
	errs := make(chan error, streams)
	// Round-robin blocks across streams: stream k sends blocks k, k+S, …
	for k := 0; k < streams; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			conn, err := net.DialTimeout("tcp", net.JoinHostPort(c.host, port), 30*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			fmt.Fprintf(conn, "DATA %s %d\n", xferID, k)
			w := bufio.NewWriterSize(conn, blockSize+16)
			buf := make([]byte, blockSize)
			for blockIdx := int64(k); blockIdx*blockSize < size; blockIdx += int64(streams) {
				off := blockIdx * blockSize
				n := blockSize
				if off+int64(n) > size {
					n = int(size - off)
				}
				if _, err := ra.ReadAt(buf[:n], off); err != nil && err != io.EOF {
					errs <- err
					return
				}
				if err := writeBlock(w, uint64(off), buf[:n]); err != nil {
					errs <- err
					return
				}
			}
			if err := writeBlock(w, 0, nil); err != nil {
				errs <- err
				return
			}
			errs <- w.Flush()
		}(k)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			c.readReply() // drain the control-channel completion
			return fmt.Errorf("gridftp: data stream: %w", err)
		}
	}
	code, msg, err = c.readReply()
	if err != nil {
		return err
	}
	if code != 226 {
		return fmt.Errorf("gridftp: STOR %s failed: %s", path, msg)
	}
	return nil
}

// StoreBytes uploads a byte slice.
func (c *Client) StoreBytes(path string, data []byte) error {
	return c.StoreFrom(path, bytes.NewReader(data), int64(len(data)))
}

// StoreFile uploads a local file.
func (c *Client) StoreFile(remotePath, localPath string) error {
	f, err := os.Open(localPath)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	return c.StoreFrom(remotePath, f, st.Size())
}

// Retrieve downloads a remote file into wa (which must accept writes at
// arbitrary offsets, since parallel streams deliver out of order).
// It returns the byte count.
func (c *Client) Retrieve(path string, wa io.WriterAt) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	code, msg, err := c.cmd("RETR %s", path)
	if err != nil {
		return 0, err
	}
	if code != 150 {
		return 0, fmt.Errorf("gridftp: RETR %s: %s", path, msg)
	}
	fields := strings.Fields(msg)
	if len(fields) != 3 {
		return 0, fmt.Errorf("gridftp: malformed RETR grant %q", msg)
	}
	xferID, port := fields[0], fields[1]
	size, err := strconv.ParseInt(fields[2], 10, 64)
	if err != nil {
		return 0, err
	}
	streams := c.parallel
	var wg sync.WaitGroup
	errs := make(chan error, streams)
	for k := 0; k < streams; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			conn, err := net.DialTimeout("tcp", net.JoinHostPort(c.host, port), 30*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			fmt.Fprintf(conn, "DATA %s %d\n", xferID, k)
			r := bufio.NewReaderSize(conn, blockSize+16)
			for {
				off, payload, err := readBlock(r)
				if err != nil {
					errs <- err
					return
				}
				if payload == nil {
					errs <- nil
					return
				}
				if _, err := wa.WriteAt(payload, int64(off)); err != nil {
					errs <- err
					return
				}
			}
		}(k)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			c.readReply()
			return 0, fmt.Errorf("gridftp: data stream: %w", err)
		}
	}
	code, msg, err = c.readReply()
	if err != nil {
		return 0, err
	}
	if code != 226 {
		return 0, fmt.Errorf("gridftp: RETR %s failed: %s", path, msg)
	}
	return size, nil
}

// RetrieveFile downloads to a local file.
func (c *Client) RetrieveFile(remotePath, localPath string) (int64, error) {
	f, err := os.Create(localPath)
	if err != nil {
		return 0, err
	}
	n, rerr := c.Retrieve(remotePath, f)
	cerr := f.Close()
	if rerr != nil {
		return n, rerr
	}
	return n, cerr
}

// RetrieveBytes downloads a whole remote file into memory.
func (c *Client) RetrieveBytes(path string) ([]byte, error) {
	var buf writerAtBuffer
	if _, err := c.Retrieve(path, &buf); err != nil {
		return nil, err
	}
	return buf.data, nil
}

// ThirdParty asks this server to push src to dst on another server —
// the splitter's "transfer dataset parts to worker nodes" primitive.
func (c *Client) ThirdParty(src, remoteAddr, dst, token string) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if token == "" {
		token = "-" // keep the command at four fields
	}
	code, msg, err := c.cmd("XFER %s %s %s %s", src, remoteAddr, dst, token)
	if err != nil {
		return 0, err
	}
	if code != 226 {
		return 0, fmt.Errorf("gridftp: XFER failed: %s", msg)
	}
	return strconv.ParseInt(msg, 10, 64)
}

// VerifyTransfer compares the remote checksum with local bytes — end-to-end
// integrity for staged dataset parts.
func (c *Client) VerifyTransfer(path string, local []byte) error {
	remote, err := c.Checksum(path)
	if err != nil {
		return err
	}
	if want := crc32.ChecksumIEEE(local); remote != want {
		return fmt.Errorf("gridftp: checksum mismatch on %s: remote %08x local %08x", path, remote, want)
	}
	return nil
}

// writerAtBuffer grows as offsets arrive.
type writerAtBuffer struct {
	mu   sync.Mutex
	data []byte
}

func (b *writerAtBuffer) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errors.New("negative offset")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	end := off + int64(len(p))
	if int64(len(b.data)) < end {
		grown := make([]byte, end)
		copy(grown, b.data)
		b.data = grown
	}
	copy(b.data[off:], p)
	return len(p), nil
}
