// Package gridftp implements the data movement protocol of the framework —
// the "thick green arrows" of Figure 2. It reproduces the GridFTP design:
// a text control channel negotiating transfers, block-framed data flowing
// over K parallel TCP streams (the striped transfer mode that made GridFTP
// fast over 2006 WANs), third-party transfers (server → server, how the
// splitter pushes dataset parts from the shared disk to the worker nodes,
// §3.4), sizes, and CRC checksums for end-to-end verification.
//
// Control protocol (one line per message, space separated):
//
//	C: AUTH <token>                          S: 230 ok
//	C: SIZE <path>                           S: 213 <bytes>
//	C: CKSM <path>                           S: 213 <crc32-hex>
//	C: PARALLEL <n>                          S: 200 ok
//	C: STOR <path> <bytes>                   S: 150 <xfer-id> <port>
//	C: RETR <path>                           S: 150 <xfer-id> <port> <bytes>
//	C: XFER <src-path> <host:port> <dst-path> <token>   S: 226 <bytes>
//	C: QUIT                                  S: 221 bye
//
// Data connections open to <port> and introduce themselves with one line
// "DATA <xfer-id> <stream>\n", then exchange length-prefixed blocks:
// offset uint64, length uint32, payload. A zero-length block ends a stream.
package gridftp

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/ipa-grid/ipa/internal/storage"
)

// DefaultParallelism is the stream count when the client does not negotiate.
const DefaultParallelism = 4

// blockSize is the data-channel block payload size.
const blockSize = 256 * 1024

// TokenChecker authorizes control connections; nil accepts everything.
type TokenChecker func(token string) error

// Server serves one storage element.
type Server struct {
	store *storage.Element
	check TokenChecker

	mu     sync.Mutex
	xfers  map[string]*serverXfer
	nextID int64
	ln     net.Listener
	closed bool
}

type serverXfer struct {
	id       string
	path     string
	size     int64
	incoming bool
	streams  int
	ln       net.Listener
	srv      *Server

	mu       sync.Mutex
	chunks   map[int64][]byte // offset → payload (STOR reassembly)
	received int64
	done     chan error
	once     sync.Once
}

// NewServer creates a GridFTP server for a storage element.
func NewServer(store *storage.Element, check TokenChecker) *Server {
	return &Server{store: store, check: check, xfers: make(map[string]*serverXfer)}
}

// Listen starts the control listener and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go s.serveControl(conn)
		}
	}()
	return ln.Addr().String(), nil
}

// Addr returns the control address.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	xfers := make([]*serverXfer, 0, len(s.xfers))
	for _, x := range s.xfers {
		xfers = append(xfers, x)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, x := range xfers {
		if x.ln != nil {
			x.ln.Close()
		}
	}
}

func reply(w *bufio.Writer, format string, args ...any) {
	fmt.Fprintf(w, format+"\r\n", args...)
	w.Flush()
}

func (s *Server) serveControl(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	authed := s.check == nil
	parallel := DefaultParallelism
	reply(w, "220 IPA GridFTP ready")
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) == 0 {
			continue
		}
		cmd := strings.ToUpper(fields[0])
		args := fields[1:]
		if cmd == "QUIT" {
			reply(w, "221 bye")
			return
		}
		if cmd == "AUTH" {
			token := ""
			if len(args) > 0 {
				token = args[0]
			}
			if s.check != nil {
				if err := s.check(token); err != nil {
					reply(w, "530 auth failed: %v", err)
					continue
				}
			}
			authed = true
			reply(w, "230 ok")
			continue
		}
		if !authed {
			reply(w, "530 please AUTH first")
			continue
		}
		switch cmd {
		case "PARALLEL":
			if len(args) != 1 {
				reply(w, "501 PARALLEL <n>")
				continue
			}
			n, err := strconv.Atoi(args[0])
			if err != nil || n < 1 || n > 64 {
				reply(w, "501 bad stream count")
				continue
			}
			parallel = n
			reply(w, "200 ok")
		case "SIZE":
			if len(args) != 1 {
				reply(w, "501 SIZE <path>")
				continue
			}
			size, err := s.store.Size(args[0])
			if err != nil {
				reply(w, "550 %v", err)
				continue
			}
			reply(w, "213 %d", size)
		case "CKSM":
			if len(args) != 1 {
				reply(w, "501 CKSM <path>")
				continue
			}
			sum, err := s.checksum(args[0])
			if err != nil {
				reply(w, "550 %v", err)
				continue
			}
			reply(w, "213 %08x", sum)
		case "STOR":
			if len(args) != 2 {
				reply(w, "501 STOR <path> <bytes>")
				continue
			}
			size, err := strconv.ParseInt(args[1], 10, 64)
			if err != nil || size < 0 {
				reply(w, "501 bad size")
				continue
			}
			x, err := s.newXfer(args[0], size, true, parallel)
			if err != nil {
				reply(w, "550 %v", err)
				continue
			}
			reply(w, "150 %s %d", x.id, dataPort(x.ln))
			// Completion is reported on the control channel.
			if err := <-x.done; err != nil {
				reply(w, "451 transfer failed: %v", err)
			} else {
				reply(w, "226 %d", x.received)
			}
			s.dropXfer(x)
		case "RETR":
			if len(args) != 1 {
				reply(w, "501 RETR <path>")
				continue
			}
			size, err := s.store.Size(args[0])
			if err != nil {
				reply(w, "550 %v", err)
				continue
			}
			x, err := s.newXfer(args[0], size, false, parallel)
			if err != nil {
				reply(w, "550 %v", err)
				continue
			}
			reply(w, "150 %s %d %d", x.id, dataPort(x.ln), size)
			if err := <-x.done; err != nil {
				reply(w, "451 transfer failed: %v", err)
			} else {
				reply(w, "226 %d", size)
			}
			s.dropXfer(x)
		case "XFER":
			// Third-party: push a local file to a remote GridFTP server.
			if len(args) != 4 {
				reply(w, "501 XFER <src> <host:port> <dst> <token>")
				continue
			}
			token := args[3]
			if token == "-" {
				token = ""
			}
			n, err := s.thirdParty(args[0], args[1], args[2], token, parallel)
			if err != nil {
				reply(w, "451 %v", err)
				continue
			}
			reply(w, "226 %d", n)
		default:
			reply(w, "500 unknown command %s", cmd)
		}
	}
}

func dataPort(ln net.Listener) int { return ln.Addr().(*net.TCPAddr).Port }

func (s *Server) checksum(path string) (uint32, error) {
	f, _, err := s.store.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	h := crc32.NewIEEE()
	if _, err := io.Copy(h, f); err != nil {
		return 0, err
	}
	return h.Sum32(), nil
}

func (s *Server) newXfer(path string, size int64, incoming bool, streams int) (*serverXfer, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errors.New("gridftp: server closed")
	}
	s.nextID++
	id := fmt.Sprintf("x%d", s.nextID)
	s.mu.Unlock()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	x := &serverXfer{
		id: id, path: path, size: size, incoming: incoming,
		streams: streams, ln: ln, srv: s,
		chunks: make(map[int64][]byte),
		done:   make(chan error, 1),
	}
	s.mu.Lock()
	s.xfers[id] = x
	s.mu.Unlock()
	go x.acceptStreams()
	return x, nil
}

func (s *Server) dropXfer(x *serverXfer) {
	x.ln.Close()
	s.mu.Lock()
	delete(s.xfers, x.id)
	s.mu.Unlock()
}

func (x *serverXfer) finish(err error) {
	x.once.Do(func() { x.done <- err })
}

// acceptStreams handles the data side of one transfer.
func (x *serverXfer) acceptStreams() {
	x.ln.(*net.TCPListener).SetDeadline(time.Now().Add(60 * time.Second))
	var wg sync.WaitGroup
	var streamErr error
	var errMu sync.Mutex
	fail := func(err error) {
		errMu.Lock()
		if streamErr == nil {
			streamErr = err
		}
		errMu.Unlock()
	}
	if !x.incoming {
		// RETR: split the file across streams by round-robin blocks.
		f, _, err := x.srv.store.Open(x.path)
		if err != nil {
			x.finish(err)
			return
		}
		defer f.Close()
		// Accept exactly x.streams connections (the client opens them).
		conns := make([]net.Conn, 0, x.streams)
		for len(conns) < x.streams {
			conn, err := x.ln.Accept()
			if err != nil {
				for _, c := range conns {
					c.Close()
				}
				x.finish(fmt.Errorf("gridftp: accepting data stream: %w", err))
				return
			}
			if _, _, err := readDataHello(conn, x.id); err != nil {
				conn.Close()
				continue
			}
			conns = append(conns, conn) // RETR only writes; buffered reader unused
		}
		var offMu sync.Mutex
		var off int64
		for _, conn := range conns {
			wg.Add(1)
			go func(conn net.Conn) {
				defer wg.Done()
				defer conn.Close()
				w := bufio.NewWriterSize(conn, blockSize+16)
				buf := make([]byte, blockSize)
				for {
					offMu.Lock()
					myOff := off
					if myOff >= x.size {
						offMu.Unlock()
						break
					}
					off += blockSize
					offMu.Unlock()
					n := blockSize
					if myOff+int64(n) > x.size {
						n = int(x.size - myOff)
					}
					if _, err := f.(io.ReaderAt).ReadAt(buf[:n], myOff); err != nil && err != io.EOF {
						fail(err)
						break
					}
					if err := writeBlock(w, uint64(myOff), buf[:n]); err != nil {
						fail(err)
						break
					}
				}
				writeBlock(w, 0, nil) // EOF block
				w.Flush()
			}(conn)
		}
		wg.Wait()
		x.finish(streamErr)
		return
	}
	// STOR: receive blocks from any number of streams until size reached.
	// Buffered so the completing stream's signal survives even if it wins
	// the race with the select below.
	received := make(chan struct{}, 1)
	go func() {
		for {
			conn, err := x.ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func(conn net.Conn) {
				defer wg.Done()
				defer conn.Close()
				_, r, err := readDataHello(conn, x.id)
				if err != nil {
					return
				}
				for {
					off, payload, err := readBlock(r)
					if err != nil {
						if err != io.EOF {
							fail(err)
						}
						return
					}
					if payload == nil {
						return // stream EOF
					}
					x.mu.Lock()
					x.chunks[int64(off)] = payload
					x.received += int64(len(payload))
					complete := x.received >= x.size
					x.mu.Unlock()
					if complete {
						select {
						case received <- struct{}{}:
						default:
						}
						return
					}
				}
			}(conn)
		}
	}()
	if x.size == 0 {
		close(received)
	}
	select {
	case <-received:
	case <-time.After(60 * time.Second):
		x.finish(errors.New("gridftp: transfer timed out"))
		return
	}
	// Reassemble in offset order and store.
	x.mu.Lock()
	offsets := make([]int64, 0, len(x.chunks))
	for off := range x.chunks {
		offsets = append(offsets, off)
	}
	x.mu.Unlock()
	sortInt64s(offsets)
	pr, pw := io.Pipe()
	go func() {
		for _, off := range offsets {
			x.mu.Lock()
			chunk := x.chunks[off]
			x.mu.Unlock()
			if _, err := pw.Write(chunk); err != nil {
				pw.CloseWithError(err)
				return
			}
		}
		pw.Close()
	}()
	if _, err := x.srv.store.Put(x.path, pr); err != nil {
		x.finish(err)
		return
	}
	x.finish(streamErr)
}

func sortInt64s(a []int64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// thirdParty pushes a local file to another GridFTP server (server-side
// copy: data never touches the orchestrating client).
func (s *Server) thirdParty(src, remoteAddr, dst, token string, parallel int) (int64, error) {
	f, size, err := s.store.Open(src)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	c, err := Dial(remoteAddr, token)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	if err := c.SetParallel(parallel); err != nil {
		return 0, err
	}
	if err := c.StoreFrom(dst, f.(io.ReaderAt), size); err != nil {
		return 0, err
	}
	return size, nil
}

// Data-channel framing.

func writeBlock(w *bufio.Writer, off uint64, payload []byte) error {
	var hdr [12]byte
	binary.BigEndian.PutUint64(hdr[0:], off)
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readBlock returns (offset, payload, err); payload nil signals stream EOF.
func readBlock(r *bufio.Reader) (uint64, []byte, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	off := binary.BigEndian.Uint64(hdr[0:])
	length := binary.BigEndian.Uint32(hdr[8:])
	if length == 0 {
		return off, nil, nil
	}
	if length > blockSize*4 {
		return 0, nil, fmt.Errorf("gridftp: oversized block %d", length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return off, payload, nil
}

// readDataHello consumes the introduction line of a data connection and
// returns the buffered reader wrapping conn. Callers MUST keep reading
// through the returned reader: it may already hold buffered payload bytes
// that arrived in the same TCP segment as the hello.
func readDataHello(conn net.Conn, wantID string) (stream int, r *bufio.Reader, err error) {
	conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	r = bufio.NewReaderSize(conn, blockSize+16)
	line, err := r.ReadString('\n')
	if err != nil {
		return 0, nil, err
	}
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) != 3 || fields[0] != "DATA" || fields[1] != wantID {
		return 0, nil, fmt.Errorf("gridftp: bad data hello %q", line)
	}
	n, err := strconv.Atoi(fields[2])
	if err != nil {
		return 0, nil, err
	}
	conn.SetReadDeadline(time.Time{})
	return n, r, nil
}
