// DNA motif counting — the paper's second motivating domain: "DNA
// sequencing combinations in cellular biology" (§1). Each dataset record
// is a synthetic DNA read; the uploaded script counts GC content and
// scans for a motif, demonstrating that the framework is generic over
// record formats (the script uses the raw decoder and string builtins).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"github.com/ipa-grid/ipa"
	"github.com/ipa-grid/ipa/internal/catalog"
	"github.com/ipa-grid/ipa/internal/dataset"
	"github.com/ipa-grid/ipa/internal/locator"
)

const dnaScript = `
gc = tree.h1d("/dna", "gc-content", "GC fraction per read", 50, 0, 1);
hits = tree.h1d("/dna", "motif-hits", "TATA motifs per read", 10, 0, 10);
function process(read) {
	n = len(read);
	if (n == 0) return;
	g = 0;
	count = 0;
	for (i : n) {
		c = read[i];
		if (c == "G" || c == "C") g += 1;
		if (i + 4 <= n && read[i] == "T" && read[i+1] == "A" && read[i+2] == "T" && read[i+3] == "A") count += 1;
	}
	gc.fill(g / n);
	hits.fill(count);
}
`

// writeReads generates a dataset of random DNA reads.
func writeReads(path string, n int, seed int64) (sizeMB float64, err error) {
	w, closer, err := dataset.Create(path)
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	letters := []byte("ACGT")
	var total int64
	for i := 0; i < n; i++ {
		read := make([]byte, 80+rng.Intn(120))
		for j := range read {
			read[j] = letters[rng.Intn(4)]
		}
		if err := w.Append(read); err != nil {
			closer()
			return 0, err
		}
		total += int64(len(read))
	}
	return float64(total) / (1 << 20), closer()
}

func main() {
	grid, err := ipa.NewLocalGrid(ipa.GridOptions{Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer grid.Close()
	grid.AddUser("curie", ipa.RoleAnalyst)

	// Publish a raw-format dataset by hand (PublishDataset is LC-specific).
	dir, _ := os.MkdirTemp("", "dna-*")
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "genome.ipa")
	sizeMB, err := writeReads(path, 20000, 11)
	if err != nil {
		log.Fatal(err)
	}
	if err := grid.Catalog.AddDataset("/bio", catalog.DatasetRef{
		ID: "ds-genome", Name: "genome-x", SizeMB: sizeMB, Records: 20000, Format: "raw",
	}, map[string]string{"organism": "synthetic"}); err != nil {
		log.Fatal(err)
	}
	if err := grid.Locator.Register("ds-genome", locator.Replica{
		URL: "file://" + path, Site: "local", Priority: 1,
	}); err != nil {
		log.Fatal(err)
	}

	client, _ := grid.ClientFor("curie")
	if err := client.CreateSession(); err != nil {
		log.Fatal(err)
	}
	defer client.CloseSession()
	if _, err := client.AttachDataset("ds-genome"); err != nil {
		log.Fatal(err)
	}
	if _, err := client.LoadScript("dna", dnaScript, "raw", nil); err != nil {
		log.Fatal(err)
	}
	if err := client.Run(); err != nil {
		log.Fatal(err)
	}
	for {
		up, err := client.Poll()
		if err != nil {
			log.Fatal(err)
		}
		if up.EventsTotal > 0 && up.EventsDone == up.EventsTotal {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Print(ipa.RenderH1D(client.Histogram1D("/dna/gc-content"), ipa.RenderOptions{Width: 40}))
	fmt.Println()
	fmt.Print(ipa.RenderH1D(client.Histogram1D("/dna/motif-hits"), ipa.RenderOptions{Width: 40}))
}
