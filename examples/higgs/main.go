// Higgs search — the paper's own §4 use case: "a Java algorithm that looks
// for Higgs Bosons in simulated Linear Collider data", here as the built-in
// native analysis running on 8 parallel engines, with the interactive
// fine-tuning loop the paper motivates: run, inspect, tighten a cut,
// rewind, re-run.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/ipa-grid/ipa"
)

func main() {
	grid, err := ipa.NewLocalGrid(ipa.GridOptions{Nodes: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer grid.Close()
	grid.AddUser("alice", ipa.RoleAnalyst)
	// ZH events at √s = 500 GeV with a 120 GeV Higgs over continuum
	// background — the era's Linear Collider benchmark.
	if err := grid.PublishDataset("ds-zh", "/lc/zh", "zh-500", 12000,
		ipa.GenConfig{Seed: 2006, SignalFraction: 0.25},
		map[string]string{"process": "e+e- -> ZH", "energy": "500"}); err != nil {
		log.Fatal(err)
	}

	client, err := grid.ClientFor("alice")
	if err != nil {
		log.Fatal(err)
	}
	if err := client.CreateSession(); err != nil {
		log.Fatal(err)
	}
	defer client.CloseSession()
	if _, err := client.AttachDataset("ds-zh"); err != nil {
		log.Fatal(err)
	}

	runOnce := func(minE string) {
		if _, err := client.LoadNative("higgs", ipa.HiggsAnalysisName,
			map[string]string{"minE": minE, "bins": "125"}); err != nil {
			log.Fatal(err)
		}
		if err := client.Run(); err != nil {
			log.Fatal(err)
		}
		for {
			up, err := client.Poll()
			if err != nil {
				log.Fatal(err)
			}
			if up.EventsTotal > 0 && up.EventsDone == up.EventsTotal {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		h := client.Histogram1D("/higgs/dijet-mass")
		// Global maximum is the Z → qq̄ peak; the discovery statistic is
		// the maximum inside the Higgs search window, like the built-in
		// analysis annotates (higgs.peak).
		zBin := h.MaxBin()
		hPeak, hHeight := peakIn(h, 100, 140)
		fmt.Printf("minE=%s GeV: %d pairs; Z peak at %.0f GeV; Higgs-window peak at %.0f GeV (height %.0f)\n",
			minE, h.Entries(), h.Axis().BinCenter(zBin), hPeak, hHeight)
		fmt.Print(ipa.RenderH1D(h, ipa.RenderOptions{Width: 50, MaxRow: 60}))
		fmt.Println()
	}

	fmt.Println("=== first pass: loose selection (minE = 10 GeV) ===")
	runOnce("10")

	// The interactive loop of §3.6: change the analysis, rewind, rerun
	// the same staged dataset — no re-staging.
	fmt.Println("=== fine-tuned: tighter jets (minE = 40 GeV), after rewind ===")
	if err := client.Rewind(); err != nil {
		log.Fatal(err)
	}
	runOnce("40")
}

// peakIn finds the highest bin with center in [lo, hi].
func peakIn(h *ipa.Histogram1D, lo, hi float64) (center, height float64) {
	ax := h.Axis()
	height = -1
	for i := 0; i < ax.Bins(); i++ {
		c := ax.BinCenter(i)
		if c >= lo && c <= hi && h.BinHeight(i) > height {
			center, height = c, h.BinHeight(i)
		}
	}
	return center, height
}
