// Quickstart: stand up a complete in-process Grid site, publish a small
// simulated Linear Collider dataset, run a scripted analysis on 4 parallel
// engines, and print the merged histogram — the paper's Figure 1 workflow
// in one file.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/ipa-grid/ipa"
)

const analysisScript = `
// User analysis code, shipped as source to every engine (§3.5).
mult = tree.h1d("/demo", "multiplicity", "Particles per event", 40, 0, 160);
energy = tree.h1d("/demo", "energy", "Total visible energy [GeV]", 50, 0, 800);
function process(ev) {
	mult.fill(ev.n);
	tot = 0;
	for (p : ev.particles) tot += p.e;
	energy.fill(tot);
}
function end() { println("worker", workerid, "done:", mult.entries(), "events"); }
`

func main() {
	// A 4-node Grid site with security, scheduler, storage and services.
	grid, err := ipa.NewLocalGrid(ipa.GridOptions{Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer grid.Close()

	// Enroll a user in the VO and publish a dataset into the catalog.
	if _, err := grid.AddUser("alice", ipa.RoleAnalyst); err != nil {
		log.Fatal(err)
	}
	if err := grid.PublishDataset("ds-demo", "/lc/demo", "demo-events", 4000,
		ipa.GenConfig{Seed: 7}, map[string]string{"detector": "sid"}); err != nil {
		log.Fatal(err)
	}

	// Step 1-2: obtain a proxy, connect, create the session (engines
	// start on the interactive queue via GRAM).
	client, err := grid.ClientFor("alice")
	if err != nil {
		log.Fatal(err)
	}
	if err := client.CreateSession(); err != nil {
		log.Fatal(err)
	}
	defer client.CloseSession()
	fmt.Printf("session %s with %d engines\n", client.SessionID()[:8], client.Engines())

	// Step 3: pick the dataset from the catalog and stage it.
	hits, err := client.QueryCatalog(`detector == "sid"`)
	if err != nil || len(hits) == 0 {
		log.Fatalf("catalog query: %v (%d hits)", err, len(hits))
	}
	times, err := client.AttachDataset(hits[0].ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("staged %.1f MB into %d parts (move=%dms split=%dms parts=%dms)\n",
		times.SizeMB, times.Parts, times.MoveWhole, times.Split, times.MoveParts)

	// Step 4: ship the analysis script and run.
	if _, err := client.LoadScript("demo", analysisScript, ipa.EventDecoderName, nil); err != nil {
		log.Fatal(err)
	}
	if err := client.Run(); err != nil {
		log.Fatal(err)
	}

	// Watch intermediate results arrive, like the JAS3 panels (Figure 4).
	for {
		up, err := client.Poll()
		if err != nil {
			log.Fatal(err)
		}
		for _, line := range up.Logs {
			fmt.Println("  [engine]", line)
		}
		if up.EventsTotal > 0 && up.EventsDone == up.EventsTotal {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	h := client.Histogram1D("/demo/multiplicity")
	fmt.Println()
	fmt.Print(ipa.RenderH1D(h, ipa.RenderOptions{Width: 40}))
	fmt.Println()
	fmt.Print(ipa.RenderTree(client.Tree()))
}
