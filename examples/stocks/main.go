// Stock-trade analysis — the paper's third motivating domain: "stock
// trading records in business" (§1). Records are CSV-ish trade lines; the
// uploaded script computes per-symbol volume-weighted average prices and a
// trade-size histogram, using the interactive Step control to preview the
// first chunk before committing to the full run.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"github.com/ipa-grid/ipa"
	"github.com/ipa-grid/ipa/internal/catalog"
	"github.com/ipa-grid/ipa/internal/dataset"
	"github.com/ipa-grid/ipa/internal/locator"
)

const stocksScript = `
// Trade record: "SYMBOL,price,shares"
sizes = tree.h1d("/trades", "shares", "Shares per trade", 50, 0, 5000);
px = tree.p1d("/trades", "price-by-size", "Price vs trade size", 25, 0, 5000);
vwapNum = {}; vwapDen = {};
function process(line) {
	f = split(line, ",");
	if (len(f) != 3) { error("bad trade record: " + line); }
	sym = f[0]; price = num(f[1]); shares = num(f[2]);
	sizes.fill(shares);
	px.fill(shares, price);
	if (!has(vwapNum, sym)) { vwapNum[sym] = 0; vwapDen[sym] = 0; }
	vwapNum[sym] += price * shares;
	vwapDen[sym] += shares;
}
function end() {
	for (sym : vwapNum) {
		println(sym, "vwap", format("%.2f", vwapNum[sym] / vwapDen[sym]));
	}
}
`

func writeTrades(path string, n int, seed int64) (float64, int64, error) {
	w, closer, err := dataset.Create(path)
	if err != nil {
		return 0, 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	symbols := []string{"SLAC", "TXCP", "GRID", "AIDA"}
	base := map[string]float64{"SLAC": 42, "TXCP": 17, "GRID": 99, "AIDA": 65}
	var total int64
	for i := 0; i < n; i++ {
		sym := symbols[rng.Intn(len(symbols))]
		price := base[sym] * (1 + rng.NormFloat64()*0.02)
		shares := 100 * (1 + rng.Intn(40))
		rec := fmt.Sprintf("%s,%.2f,%d", sym, price, shares)
		if err := w.Append([]byte(rec)); err != nil {
			closer()
			return 0, 0, err
		}
		total += int64(len(rec))
	}
	return float64(total) / (1 << 20), int64(n), closer()
}

func main() {
	grid, err := ipa.NewLocalGrid(ipa.GridOptions{Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer grid.Close()
	grid.AddUser("trader", ipa.RoleAnalyst)

	dir, _ := os.MkdirTemp("", "stocks-*")
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "trades.ipa")
	sizeMB, records, err := writeTrades(path, 30000, 5)
	if err != nil {
		log.Fatal(err)
	}
	grid.Catalog.AddDataset("/markets", catalog.DatasetRef{
		ID: "ds-trades", Name: "trades-2006", SizeMB: sizeMB, Records: records, Format: "raw",
	}, map[string]string{"exchange": "synthetic"})
	grid.Locator.Register("ds-trades", locator.Replica{URL: "file://" + path, Site: "local", Priority: 1})

	client, _ := grid.ClientFor("trader")
	if err := client.CreateSession(); err != nil {
		log.Fatal(err)
	}
	defer client.CloseSession()
	if _, err := client.AttachDataset("ds-trades"); err != nil {
		log.Fatal(err)
	}
	if _, err := client.LoadScript("vwap", stocksScript, "raw", nil); err != nil {
		log.Fatal(err)
	}

	// Preview: step 500 trades per engine, inspect, then run the rest —
	// the interactive "run specific no of events" control of Figure 4.
	if err := client.Step(500); err != nil {
		log.Fatal(err)
	}
	waitIdle(client, 2000)
	fmt.Println("--- preview after 2000 trades ---")
	fmt.Print(ipa.RenderH1D(client.Histogram1D("/trades/shares"), ipa.RenderOptions{Width: 40}))

	if err := client.Run(); err != nil {
		log.Fatal(err)
	}
	waitAll(client)
	fmt.Println("\n--- full dataset ---")
	fmt.Print(ipa.RenderH1D(client.Histogram1D("/trades/shares"), ipa.RenderOptions{Width: 40}))
	up, _ := client.Poll()
	_ = up
	for _, l := range drainLogs(client) {
		fmt.Println("  [engine]", l)
	}
}

func waitIdle(c *ipa.Client, want int64) {
	for {
		up, err := c.Poll()
		if err != nil {
			log.Fatal(err)
		}
		if up.EventsDone >= want {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func waitAll(c *ipa.Client) {
	for {
		up, err := c.Poll()
		if err != nil {
			log.Fatal(err)
		}
		if up.EventsTotal > 0 && up.EventsDone == up.EventsTotal {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func drainLogs(c *ipa.Client) []string {
	up, err := c.Poll()
	if err != nil {
		return nil
	}
	return up.Logs
}
