// Benchmarks regenerating the paper's evaluation. One benchmark per table
// and figure (the printed rows come from cmd/ipa-bench; these measure the
// machinery and assert the headline shapes), plus micro-benchmarks for the
// framework's hot paths.
package ipa

import (
	"fmt"
	"path/filepath"
	"testing"

	"github.com/ipa-grid/ipa/internal/aida"
	"github.com/ipa-grid/ipa/internal/analysis"
	"github.com/ipa-grid/ipa/internal/dataset"
	"github.com/ipa-grid/ipa/internal/events"
	"github.com/ipa-grid/ipa/internal/merge"
	"github.com/ipa-grid/ipa/internal/perf"
	"github.com/ipa-grid/ipa/internal/script"
	"github.com/ipa-grid/ipa/internal/shard"
	"github.com/ipa-grid/ipa/internal/splitter"
)

// BenchmarkTable1 regenerates the Table 1 comparison (local vs 16-node
// Grid, 471 MB) and reports the simulated seconds as custom metrics.
func BenchmarkTable1(b *testing.B) {
	var r perf.Table1Result
	for i := 0; i < b.N; i++ {
		r = perf.Table1(perf.PaperParams())
	}
	b.ReportMetric(float64(r.Local.Total()), "local-s")
	b.ReportMetric(float64(r.Grid.Total()), "grid-s")
	b.ReportMetric(float64(r.Local.Total())/float64(r.Grid.Total()), "speedup")
}

// BenchmarkTable2 regenerates the five-row staging/analysis sweep.
func BenchmarkTable2(b *testing.B) {
	var rows []perf.Table2Row
	for i := 0; i < b.N; i++ {
		rows = perf.Table2(perf.PaperParams())
	}
	for _, row := range rows {
		b.ReportMetric(row.Analysis, fmt.Sprintf("analysis-n%d-s", row.Nodes))
	}
}

// BenchmarkTable2PerNode runs each node count as a sub-benchmark so the
// harness prints one line per paper row.
func BenchmarkTable2PerNode(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		n := n
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			var run perf.GridRun
			for i := 0; i < b.N; i++ {
				run = perf.SimulateGrid(perf.PaperParams(), 471, n)
			}
			b.ReportMetric(float64(run.MoveParts), "move-parts-s")
			b.ReportMetric(float64(run.Analysis), "analysis-s")
		})
	}
}

// BenchmarkFigure5 sweeps the full surface grid.
func BenchmarkFigure5(b *testing.B) {
	var r perf.Figure5Result
	for i := 0; i < b.N; i++ {
		r = perf.Figure5(perf.PaperParams(), nil, nil)
	}
	b.ReportMetric(float64(len(r.Sizes)*len(r.Nodes)), "cells")
}

// BenchmarkEquationsFit refits the paper's §4 equations on simulated data.
func BenchmarkEquationsFit(b *testing.B) {
	var f perf.EquationFit
	var err error
	for i := 0; i < b.N; i++ {
		f, err = perf.FitEquations(perf.EquationCalibratedParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(f.LocalSlope, "local-slope")
	b.ReportMetric(f.GridCoef[3], "grid-x-over-n")
}

// Micro-benchmarks for the framework's hot paths.

func makeEvents(b *testing.B, n int) [][]byte {
	b.Helper()
	g := events.NewGenerator(events.GenConfig{Seed: 1})
	recs := make([][]byte, n)
	for i := range recs {
		recs[i] = events.Marshal(nil, g.Next())
	}
	return recs
}

// BenchmarkHiggsAnalysis measures the reference analysis per event.
func BenchmarkHiggsAnalysis(b *testing.B) {
	recs := makeEvents(b, 1000)
	ha, _ := events.NewHiggsAnalysis(nil)
	ctx := &analysis.Context{Tree: aida.NewTree()}
	if err := ha.Init(ctx); err != nil {
		b.Fatal(err)
	}
	// SetBytes takes the per-operation byte count and must be fixed before
	// the loop; deriving it from a running total after the loop produced
	// nonsense MB/s figures.
	var total int64
	for _, rec := range recs {
		total += int64(len(rec))
	}
	b.SetBytes(total / int64(len(recs)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ha.Process(recs[i%len(recs)], ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScriptAnalysis measures the interpreted path per event.
func BenchmarkScriptAnalysis(b *testing.B) {
	recs := makeEvents(b, 1000)
	sa, err := script.NewAnalysis(`
		h = tree.h1d("/b", "mult", "", 50, 0, 200);
		function process(ev) {
			sel = 0;
			for (p : ev.particles) if (p.e >= 20) sel += 1;
			h.fill(sel);
		}
	`, events.EventDecoderName)
	if err != nil {
		b.Fatal(err)
	}
	ctx := &analysis.Context{Tree: aida.NewTree()}
	if err := sa.Init(ctx); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sa.Process(recs[i%len(recs)], ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSplitter measures record-aware splitting throughput.
func BenchmarkSplitter(b *testing.B) {
	dir := b.TempDir()
	src := filepath.Join(dir, "src.ipa")
	if _, err := events.GenerateFile(src, events.GenConfig{Seed: 2}, 5000); err != nil {
		b.Fatal(err)
	}
	r, f, err := dataset.Open(src)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	b.SetBytes(r.PayloadBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := splitter.SplitFile(src, 16, func(j int) string {
			return filepath.Join(dir, fmt.Sprintf("p%d.ipa", j))
		})
		if err != nil || plan.TotalRecords != 5000 {
			b.Fatalf("plan %+v err %v", plan, err)
		}
	}
}

// BenchmarkHistogramMerge measures the AIDA manager's merge step.
func BenchmarkHistogramMerge(b *testing.B) {
	mk := func() *aida.Histogram1D {
		h := aida.NewHistogram1D("h", "", 200, 0, 250)
		for i := 0; i < 10000; i++ {
			h.Fill(float64(i % 250))
		}
		return h
	}
	src := mk()
	dst := mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dst.MergeFrom(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotPublish measures a full worker snapshot ingestion.
func BenchmarkSnapshotPublish(b *testing.B) {
	tree := aida.NewTree()
	for o := 0; o < 10; o++ {
		h, _ := tree.H1D("/a", fmt.Sprintf("h%d", o), "", 100, 0, 100)
		for i := 0; i < 1000; i++ {
			h.Fill(float64(i % 100))
		}
	}
	st, _ := tree.State()
	m := merge.NewManager()
	var rep merge.PublishReply
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := m.Publish(merge.PublishArgs{
			SessionID: "s", WorkerID: "w", Seq: int64(i + 1), Tree: *st,
		}, &rep)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// benchPublishPollCycle measures one snapshot→publish→incremental-poll
// cycle against a manager holding 20 histograms of which one changes per
// cycle — the steady state of an interactive session. full selects the
// retained whole-tree baseline path; otherwise the delta path.
func benchPublishPollCycle(b *testing.B, full bool) {
	b.Helper()
	tree := aida.NewTree()
	hs := make([]*aida.Histogram1D, 20)
	for o := range hs {
		h, err := tree.H1D("/a", fmt.Sprintf("h%02d", o), "", 100, 0, 100)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 1000; i++ {
			h.Fill(float64(i % 100))
		}
		hs[o] = h
	}
	m := merge.NewManager()
	var rep merge.PublishReply
	publish := func(seq int64) {
		args := merge.PublishArgs{SessionID: "s", WorkerID: "w", Seq: seq}
		if full {
			st, err := tree.State()
			if err != nil {
				b.Fatal(err)
			}
			args.Tree = *st
		} else {
			d, err := tree.Delta()
			if err != nil {
				b.Fatal(err)
			}
			args.Delta = d
		}
		if err := m.Publish(args, &rep); err != nil || !rep.Accepted {
			b.Fatalf("publish seq %d: %v %+v", seq, err, rep)
		}
	}
	publish(1)
	var poll merge.PollReply
	if err := m.Poll(merge.PollArgs{SessionID: "s"}, &poll); err != nil {
		b.Fatal(err)
	}
	since := poll.Version
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hs[i%len(hs)].Fill(50)
		publish(int64(i + 2))
		poll = merge.PollReply{}
		if err := m.Poll(merge.PollArgs{SessionID: "s", SinceVersion: since}, &poll); err != nil {
			b.Fatal(err)
		}
		if !poll.Changed || len(poll.Entries) != 1 {
			b.Fatalf("cycle %d: poll = changed:%v entries:%d", i, poll.Changed, len(poll.Entries))
		}
		since = poll.Version
	}
}

// BenchmarkDeltaPublish compares the delta publish+poll cycle against the
// retained full-snapshot baseline (the headline of this PR's ablation:
// cost proportional to what changed, not total state).
func BenchmarkDeltaPublish(b *testing.B) {
	b.Run("mode=full", func(b *testing.B) { benchPublishPollCycle(b, true) })
	b.Run("mode=delta", func(b *testing.B) { benchPublishPollCycle(b, false) })
}

// BenchmarkPollIncremental measures the client-facing poll alone while a
// delta-publishing worker keeps one of 50 histograms changing.
func BenchmarkPollIncremental(b *testing.B) {
	tree := aida.NewTree()
	for o := 0; o < 50; o++ {
		h, _ := tree.H1D("/a", fmt.Sprintf("h%02d", o), "", 100, 0, 100)
		for i := 0; i < 1000; i++ {
			h.Fill(float64(i % 100))
		}
	}
	m := merge.NewManager()
	var rep merge.PublishReply
	d, err := tree.Delta()
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Publish(merge.PublishArgs{SessionID: "s", WorkerID: "w", Seq: 1, Delta: d}, &rep); err != nil {
		b.Fatal(err)
	}
	var warm merge.PollReply
	if err := m.Poll(merge.PollArgs{SessionID: "s"}, &warm); err != nil {
		b.Fatal(err)
	}
	tree.Get("/a/h00").(*aida.Histogram1D).Fill(1)
	d, err = tree.Delta()
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Publish(merge.PublishArgs{SessionID: "s", WorkerID: "w", Seq: 2, Delta: d}, &rep); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var poll merge.PollReply
		if err := m.Poll(merge.PollArgs{SessionID: "s", SinceVersion: warm.Version}, &poll); err != nil {
			b.Fatal(err)
		}
		if len(poll.Entries) != 1 {
			b.Fatalf("poll entries = %d, want 1", len(poll.Entries))
		}
	}
}

// BenchmarkEventCodec measures event marshal/unmarshal round trips.
func BenchmarkEventCodec(b *testing.B) {
	g := events.NewGenerator(events.GenConfig{Seed: 3})
	ev := g.Next()
	rec := events.Marshal(nil, ev)
	b.SetBytes(int64(len(rec)))
	var e events.Event
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec = events.Marshal(rec[:0], ev)
		if err := events.UnmarshalInto(rec, &e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCatalogQueryAblation exercises the catalog query engine
// indirectly through the facade-level grid (kept small).
func BenchmarkMergeAblationTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := perf.MergeAblation(32, 2, 4, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamAblation sweeps parallel-stream staging.
func BenchmarkStreamAblation(b *testing.B) {
	var rows []perf.StreamAblationRow
	for i := 0; i < b.N; i++ {
		rows = perf.StreamAblation(100, []int{1, 2, 4, 8})
	}
	b.ReportMetric(rows[len(rows)-1].Speedup, "speedup-8-streams")
}

// BenchmarkShardRouterPublishPoll measures one publish+incremental-poll
// cycle through the consistent-hash router over 4 manager shards — the
// per-call routing overhead on top of BenchmarkPollIncremental's flat
// manager.
func BenchmarkShardRouterPublishPoll(b *testing.B) {
	router := shard.NewRouter(0)
	for i := 0; i < 4; i++ {
		if err := router.AddShard(fmt.Sprintf("shard%d", i), merge.NewManager()); err != nil {
			b.Fatal(err)
		}
	}
	tree := aida.NewTree()
	hs := make([]*aida.Histogram1D, 20)
	for o := range hs {
		h, err := tree.H1D("/a", fmt.Sprintf("h%02d", o), "", 100, 0, 100)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 1000; i++ {
			h.Fill(float64(i % 100))
		}
		hs[o] = h
	}
	var rep merge.PublishReply
	publish := func(seq int64) {
		d, err := tree.Delta()
		if err != nil {
			b.Fatal(err)
		}
		if err := router.Publish(merge.PublishArgs{SessionID: "s", WorkerID: "w", Seq: seq, Delta: d}, &rep); err != nil || !rep.Accepted {
			b.Fatalf("publish seq %d: %v %+v", seq, err, rep)
		}
	}
	publish(1)
	var poll merge.PollReply
	if err := router.Poll(merge.PollArgs{SessionID: "s"}, &poll); err != nil {
		b.Fatal(err)
	}
	since := poll.Version
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hs[i%len(hs)].Fill(50)
		publish(int64(i + 2))
		var reply merge.PollReply
		if err := router.Poll(merge.PollArgs{SessionID: "s", SinceVersion: since}, &reply); err != nil {
			b.Fatal(err)
		}
		if len(reply.Entries) != 1 {
			b.Fatalf("incremental poll carried %d entries", len(reply.Entries))
		}
		since = reply.Version
	}
}

// BenchmarkWarmPollFrameDecode measures the client-side decode of a warm
// poll's changed-object frame — the per-poll allocation source the frame
// free list eliminates. The pooled path decodes into a recycled buffer
// and must report 0 allocs/op; the unpooled sub-benchmark is the
// retained ablation baseline (one allocation per frame).
func BenchmarkWarmPollFrameDecode(b *testing.B) {
	h := aida.NewHistogram1D("h", "", 100, 0, 100)
	for i := 0; i < 1000; i++ {
		h.Fill(float64(i % 100))
	}
	st, err := aida.StateOf(h)
	if err != nil {
		b.Fatal(err)
	}
	frame, err := aida.EncodeObjectFrame(&st)
	if err != nil {
		b.Fatal(err)
	}
	raw := append([]byte(nil), frame...)
	for _, mode := range []struct {
		name    string
		pooling bool
	}{{"pooled", true}, {"unpooled", false}} {
		b.Run(mode.name, func(b *testing.B) {
			aida.SetFramePooling(mode.pooling)
			defer aida.SetFramePooling(true)
			var f aida.ObjectFrame
			// Warm the free list so the timed region sees steady state.
			for i := 0; i < 8; i++ {
				if err := f.GobDecode(raw); err != nil {
					b.Fatal(err)
				}
				f.Release()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := f.GobDecode(raw); err != nil {
					b.Fatal(err)
				}
				f.Release()
			}
		})
	}
}
