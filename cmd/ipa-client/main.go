// ipa-client is the terminal analogue of the paper's JAS3 client: connect
// to a manager with a Grid credential, browse or query the catalog, stage
// a dataset, ship a script, run, and watch merged histograms render as
// ASCII art.
//
// Usage:
//
//	ipa-client -addr HOST:PORT -creddir ipa-creds \
//	    [-query 'detector == "sid"'] [-dataset ds-zh] [-script file.pnut]
//	    [-native higgs-search] [-insecure] [-hold 5m]
//
// With -hold the session stays open after the run finishes, so live
// viewers on a manager's SSE gateway (/live/<session>) can keep
// watching the merged results; the full session ID is printed for
// building that URL.
//
// Watch mode polls a manager's /fabric/status endpoint (the -http
// listener of ipa-manager) and renders a live per-shard load table plus
// the recent fabric events — no session or credential needed:
//
//	ipa-client -watch 127.0.0.1:6060 [-watch-interval 2s] [-once]
package main

import (
	"crypto/x509"
	"encoding/json"
	"encoding/pem"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/ipa-grid/ipa"
	"github.com/ipa-grid/ipa/internal/core"
	"github.com/ipa-grid/ipa/internal/gsi"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9443", "manager WSRF address")
	credDir := flag.String("creddir", "ipa-creds", "CA + user credential directory")
	insecure := flag.Bool("insecure", false, "plain HTTP manager")
	query := flag.String("query", "", "catalog query to run")
	datasetID := flag.String("dataset", "", "dataset ID to attach")
	scriptPath := flag.String("script", "", "analysis script file")
	native := flag.String("native", "", "native analysis name (e.g. higgs-search)")
	decoder := flag.String("decoder", ipa.EventDecoderName, "record decoder for scripts")
	watch := flag.String("watch", "", "poll this manager status endpoint (ipa-manager's -http address) and render a per-shard load table")
	watchEvery := flag.Duration("watch-interval", 2*time.Second, "poll interval for -watch")
	once := flag.Bool("once", false, "with -watch: print one snapshot and exit")
	hold := flag.Duration("hold", 0, "keep the session open this long after the run, so gateway viewers (/live/<session>) can watch (0 = close immediately)")
	flag.Parse()

	if *watch != "" {
		if err := watchFabric(*watch, *watchEvery, *once); err != nil {
			log.Fatal(err)
		}
		return
	}

	var client *core.Client
	var err error
	if *insecure {
		client, err = core.Connect(*addr, nil, nil)
	} else {
		client, err = connectSecure(*addr, *credDir)
	}
	if err != nil {
		log.Fatal(err)
	}
	if err := client.CreateSession(); err != nil {
		log.Fatal(err)
	}
	defer client.CloseSession()
	fmt.Printf("session %s (%d engines)\n", client.SessionID(), client.Engines())

	if *query != "" {
		hits, err := client.QueryCatalog(*query)
		if err != nil {
			log.Fatal(err)
		}
		for _, h := range hits {
			fmt.Printf("  %-30s id=%-10s %.1f MB, %d records (%s)\n", h.Path, h.ID, h.SizeMB, h.Records, h.Format)
		}
		if *datasetID == "" && len(hits) == 1 {
			*datasetID = hits[0].ID
		}
	}
	if *datasetID == "" {
		entries, err := client.ListCatalog("/")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("catalog root:")
		for _, e := range entries {
			fmt.Println("  ", e.Path)
		}
		return
	}
	times, err := client.AttachDataset(*datasetID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("staged %.1f MB into %d parts (move=%dms split=%dms parts=%dms)\n",
		times.SizeMB, times.Parts, times.MoveWhole, times.Split, times.MoveParts)

	switch {
	case *scriptPath != "":
		src, err := os.ReadFile(*scriptPath)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := client.LoadScript(filepath.Base(*scriptPath), string(src), *decoder, nil); err != nil {
			log.Fatal(err)
		}
	case *native != "":
		if _, err := client.LoadNative(*native, *native, nil); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatal("need -script or -native")
	}

	if err := client.Run(); err != nil {
		log.Fatal(err)
	}
	for {
		up, err := client.Poll()
		if err != nil {
			log.Fatal(err)
		}
		for _, l := range up.Logs {
			fmt.Println("  [engine]", l)
		}
		if up.EventsTotal > 0 {
			fmt.Printf("\rprogress: %d/%d events", up.EventsDone, up.EventsTotal)
		}
		if up.EventsTotal > 0 && up.EventsDone == up.EventsTotal {
			fmt.Println()
			break
		}
		time.Sleep(200 * time.Millisecond)
	}
	if st, err := client.Status(); err == nil && st.Polls > 0 {
		fmt.Printf("merge traffic: %d publishes, %d polls (%.0f%% fast-path)",
			st.Publishes, st.Polls, 100*float64(st.FastPolls)/float64(st.Polls))
		if len(st.ReplicaChain) > 0 {
			fmt.Printf(", replicas %s lag %d", strings.Join(st.ReplicaChain, " → "), st.ReplicaLag)
		} else if st.Replica != "" {
			fmt.Printf(", replica %s lag %d", st.Replica, st.ReplicaLag)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Print(ipa.RenderTree(client.Tree()))
	// Render every 1D histogram.
	for _, path := range client.Tree().ObjectPaths() {
		if h := client.Histogram1D(path); h != nil {
			fmt.Println()
			fmt.Print(ipa.RenderH1D(h, ipa.RenderOptions{Width: 50, MaxRow: 40}))
		}
	}
	if *hold > 0 {
		// Keep the session alive (polling occasionally so the merged
		// state stays warm) for gateway viewers watching
		// /live/<session>; the deferred CloseSession fires at exit.
		fmt.Printf("holding session %s open for %s (live viewers welcome)\n",
			client.SessionID(), *hold)
		deadline := time.Now().Add(*hold)
		for time.Now().Before(deadline) {
			time.Sleep(time.Second)
			if _, err := client.Poll(); err != nil {
				log.Fatal(err)
			}
		}
	}
}

// watchFabric polls /fabric/status and renders the per-shard load
// table, publish/poll deltas between rounds, and the event tail.
func watchFabric(addr string, every time.Duration, once bool) error {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	url := strings.TrimSuffix(addr, "/") + "/fabric/status"
	prevPub := map[string]int64{}
	prevPoll := map[string]int64{}
	var lastSeq uint64
	for {
		resp, err := http.Get(url)
		if err != nil {
			return err
		}
		var st ipa.FabricStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("decoding %s: %w", url, err)
		}

		fmt.Printf("— fabric @ %s  gen %d  %d shard(s), %d session(s)\n",
			time.Now().Format("15:04:05"), st.PlacementGen, len(st.Shards), len(st.Placements))
		fmt.Printf("%-10s %-5s %8s %12s %12s %10s\n", "SHARD", "STATE", "SESSIONS", "PUBLISHES", "POLLS", "RATE/POLL")
		for _, sh := range st.Shards {
			state := "up"
			if sh.Dead {
				state = "dead"
			}
			dPub := sh.Publishes - prevPub[sh.Name]
			dPoll := sh.Polls - prevPoll[sh.Name]
			prevPub[sh.Name], prevPoll[sh.Name] = sh.Publishes, sh.Polls
			fmt.Printf("%-10s %-5s %8d %12d %12d %+5d/%+4d\n",
				sh.Name, state, sh.Sessions, sh.Publishes, sh.Polls, dPub, dPoll)
		}
		if len(st.Relays) > 0 {
			// The read fan-out tier: how many downstream polls each relay
			// absorbs per upstream subscription poll, how stale its
			// mirrors run, and how many streaming viewers hang off it.
			fmt.Printf("%-10s %8s %12s %12s %9s %8s %10s\n",
				"RELAY", "SESSIONS", "UP-POLLS", "DOWN-POLLS", "FAN-OUT", "CLIENTS", "STALE(ms)")
			for _, rl := range st.Relays {
				fmt.Printf("%-10s %8d %12d %12d %8.1fx %8d %10.1f\n",
					rl.Name, rl.Sessions, rl.UpPolls, rl.DownPolls, rl.FanOut,
					rl.Clients, rl.StalenessMS)
			}
		}
		for _, p := range st.Placements {
			if len(p.Chain) == 0 && p.Replica == "" {
				continue
			}
			// Render the whole replica chain hop by hop; a "!" marks a
			// copy the anti-entropy loop considers drifted or stale.
			hops := make([]string, 0, len(p.Chain))
			for _, h := range p.Chain {
				mark := ""
				if h.Stale {
					mark = "!"
				}
				hops = append(hops, fmt.Sprintf("%s%s(lag %d)", h.Shard, mark, h.Lag))
			}
			if len(hops) == 0 {
				hops = append(hops, p.Replica)
			}
			fmt.Printf("  session %-10.10s %s → %s (epoch %d, worst lag %d)\n",
				p.SessionID, p.Shard, strings.Join(hops, " → "), p.Epoch, p.ReplicaLag)
		}
		for _, ev := range st.Events {
			if ev.Seq < lastSeq {
				continue // already shown last round
			}
			detail := ev.Detail
			if ev.TraceID != 0 {
				detail = fmt.Sprintf("%s trace=%016x", detail, ev.TraceID)
			}
			if ev.DurNanos > 0 {
				detail = fmt.Sprintf("%s (%s)", detail, time.Duration(ev.DurNanos))
			}
			fmt.Printf("  %s %-9s shard=%s session=%.10s %s\n",
				ev.At.Format("15:04:05"), ev.Kind, ev.Shard, ev.Session, detail)
		}
		lastSeq = st.NextEventSeq
		if once {
			return nil
		}
		time.Sleep(every)
	}
}

func connectSecure(addr, credDir string) (*core.Client, error) {
	caPEM, err := os.ReadFile(filepath.Join(credDir, "ca.pem"))
	if err != nil {
		return nil, fmt.Errorf("reading CA: %w", err)
	}
	certPEM, err := os.ReadFile(filepath.Join(credDir, "usercert.pem"))
	if err != nil {
		return nil, err
	}
	keyPEM, err := os.ReadFile(filepath.Join(credDir, "userkey.pem"))
	if err != nil {
		return nil, err
	}
	parse := func(p []byte) (*pem.Block, error) {
		blk, _ := pem.Decode(p)
		if blk == nil {
			return nil, fmt.Errorf("bad PEM")
		}
		return blk, nil
	}
	caBlk, err := parse(caPEM)
	if err != nil {
		return nil, err
	}
	caCert, err := x509.ParseCertificate(caBlk.Bytes)
	if err != nil {
		return nil, err
	}
	certBlk, err := parse(certPEM)
	if err != nil {
		return nil, err
	}
	cert, err := x509.ParseCertificate(certBlk.Bytes)
	if err != nil {
		return nil, err
	}
	keyBlk, err := parse(keyPEM)
	if err != nil {
		return nil, err
	}
	key, err := x509.ParseECPrivateKey(keyBlk.Bytes)
	if err != nil {
		return nil, err
	}
	cred := &gsi.Credential{Cert: cert, Key: key}
	proxy, err := gsi.NewProxy(cred, 2*time.Hour)
	if err != nil {
		return nil, err
	}
	pool := x509.NewCertPool()
	pool.AddCert(caCert)
	return core.ConnectWithPool(addr, proxy, pool)
}
