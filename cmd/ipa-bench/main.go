// ipa-bench regenerates every table and figure of the paper's evaluation
// plus the ablations, printing paper-vs-simulated rows and writing the
// Figure 5 CSV/SVG artifacts.
//
// Usage:
//
//	ipa-bench [-exp table1|table2|figure5|equations|queue|merge|streams|poll|all] [-out DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/ipa-grid/ipa/internal/aida"
	"github.com/ipa-grid/ipa/internal/perf"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run")
	out := flag.String("out", "bench-out", "artifact output directory")
	flag.Parse()
	if err := run(*exp, *out); err != nil {
		fmt.Fprintln(os.Stderr, "ipa-bench:", err)
		os.Exit(1)
	}
}

func run(exp, outDir string) error {
	p := perf.PaperParams()
	w := os.Stdout
	all := exp == "all"

	if all || exp == "table1" {
		if err := perf.RenderTable1(w, perf.Table1(p)); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if all || exp == "table2" {
		if err := perf.RenderTable2(w, perf.Table2(p)); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if all || exp == "equations" {
		f, err := perf.FitEquations(perf.EquationCalibratedParams())
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "(equation-calibrated params: reproduces the paper's published fit)")
		if err := perf.RenderEquations(w, f); err != nil {
			return err
		}
		f2, err := perf.FitEquations(p)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "\n(table-calibrated params: the coefficients the paper's own tables imply)")
		if err := perf.RenderEquations(w, f2); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if all || exp == "figure5" {
		r := perf.Figure5(p, nil, nil)
		if err := perf.RenderFigure5(w, r); err != nil {
			return err
		}
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		csv, err := os.Create(filepath.Join(outDir, "figure5.csv"))
		if err != nil {
			return err
		}
		if err := r.WriteCSV(csv); err != nil {
			csv.Close()
			return err
		}
		csv.Close()
		svg, err := os.Create(filepath.Join(outDir, "figure5-grid.svg"))
		if err != nil {
			return err
		}
		err = aida.WriteSVGHeatmap(svg, "Figure 5 — simulated Grid time (s)",
			"dataset size (MB)", "compute nodes", r.GridSurface(), 800, 500)
		svg.Close()
		if err != nil {
			return err
		}
		svg2, err := os.Create(filepath.Join(outDir, "figure5-advantage.svg"))
		if err != nil {
			return err
		}
		err = aida.WriteSVGHeatmap(svg2, "Figure 5 — local minus Grid (s; positive = Grid wins)",
			"dataset size (MB)", "compute nodes", r.AdvantageSurface(), 800, 500)
		svg2.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %s/figure5.csv, figure5-grid.svg, figure5-advantage.svg\n\n", outDir)
	}
	if all || exp == "queue" {
		r, err := perf.QueueAblation(8, 2*time.Second)
		if err != nil {
			return err
		}
		t := &aida.Table{Title: "A1 — engine start latency on a full farm (8 nodes)",
			Columns: []string{"Queue setup", "Latency"}}
		t.AddRow("dedicated interactive (preempting)", fmt.Sprintf("%d ms", r.DedicatedMS))
		shared := fmt.Sprintf("%d ms", r.SharedMS)
		if r.SharedTimedOut {
			shared = fmt.Sprintf("> %d ms (starved behind batch backlog)", r.SharedMS)
		}
		t.AddRow("shared batch queue", shared)
		fmt.Fprintln(w, t.String())
	}
	if all || exp == "merge" {
		rows, err := perf.MergeAblation(64, 4, 8, 8)
		if err != nil {
			return err
		}
		t := &aida.Table{Title: "A2 — flat vs hierarchical merging (64 workers x 4 rounds)",
			Columns: []string{"Mode", "Root publishes", "Wall ms"}}
		for _, r := range rows {
			t.AddRow(r.Mode, fmt.Sprintf("%d", r.RootPublishes), fmt.Sprintf("%d", r.WallMS))
		}
		fmt.Fprintln(w, t.String())
	}
	if all || exp == "streams" {
		rows := perf.StreamAblation(471, []int{1, 2, 4, 8, 16})
		t := &aida.Table{Title: "A3 — parallel GridFTP streams over a window-limited WAN (471 MB)",
			Columns: []string{"Streams", "Seconds", "Speedup"}}
		for _, r := range rows {
			t.AddRow(fmt.Sprintf("%d", r.Streams), fmt.Sprintf("%.1f", r.Seconds), fmt.Sprintf("%.2fx", r.Speedup))
		}
		fmt.Fprintln(w, t.String())
	}
	if all || exp == "poll" {
		r, err := perf.PollAblation(20)
		if err != nil {
			return err
		}
		t := &aida.Table{Title: "A4 — client poll size, 20 histograms, 1 changed",
			Columns: []string{"Strategy", "Bytes"}}
		t.AddRow("full tree", fmt.Sprintf("%d", r.FullBytes))
		t.AddRow("incremental", fmt.Sprintf("%d", r.IncrementalBytes))
		fmt.Fprintln(w, t.String())
	}
	return nil
}
