// ipa-bench regenerates every table and figure of the paper's evaluation
// plus the ablations, printing paper-vs-simulated rows and writing the
// Figure 5 CSV/SVG artifacts. It also emits a JSON metrics baseline
// (default BENCH_10.json) so successive PRs can track the perf trajectory
// against the committed BENCH_1…BENCH_9 baselines. The baseline carries
// an "env" block (Go version, CPU count, GOMAXPROCS) so trajectory
// comparisons are hardware-aware.
//
// Usage:
//
//	ipa-bench [-exp table1|table2|figure5|equations|queue|merge|streams|poll|publish|hierarchy|pollcache|wire|shard|lock|place|repl|mcore|obs|chaos|relay|all] [-out DIR] [-json FILE] [-tiny] [-cpuprofile FILE] [-memprofile FILE]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/ipa-grid/ipa/internal/aida"
	"github.com/ipa-grid/ipa/internal/perf"
)

func main() {
	os.Exit(realMain())
}

// realMain exists so the profile-stopping defers run before exit.
func realMain() int {
	exp := flag.String("exp", "all", "experiment to run")
	out := flag.String("out", "bench-out", "artifact output directory")
	jsonPath := flag.String("json", "BENCH_10.json", "metrics baseline file (\"\" disables)")
	tiny := flag.Bool("tiny", false, "shrink experiment sizes (CI smoke under -race)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()
	// A partial run writes a partial metrics map; never let it silently
	// clobber the committed full baseline unless -json was given
	// explicitly.
	jsonSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "json" {
			jsonSet = true
		}
	})
	if *exp != "all" && !jsonSet {
		*jsonPath = ""
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipa-bench:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "ipa-bench:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ipa-bench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retention
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ipa-bench:", err)
			}
		}()
	}
	if err := run(*exp, *out, *jsonPath, *tiny); err != nil {
		fmt.Fprintln(os.Stderr, "ipa-bench:", err)
		return 1
	}
	return 0
}

func run(exp, outDir, jsonPath string, tiny bool) error {
	p := perf.PaperParams()
	w := os.Stdout
	all := exp == "all"
	switch exp {
	case "all", "table1", "table2", "figure5", "equations", "queue", "merge", "streams", "poll", "publish", "hierarchy", "pollcache", "wire", "shard", "lock", "place", "repl", "mcore", "obs", "chaos", "relay":
	default:
		return fmt.Errorf("unknown experiment %q (want table1|table2|figure5|equations|queue|merge|streams|poll|publish|hierarchy|pollcache|wire|shard|lock|place|repl|mcore|obs|chaos|relay|all)", exp)
	}
	// metrics accumulates the headline number of every experiment that
	// ran; the baseline file lets future PRs diff perf without re-parsing
	// tables.
	metrics := map[string]float64{}

	if all || exp == "table1" {
		r := perf.Table1(p)
		if err := perf.RenderTable1(w, r); err != nil {
			return err
		}
		fmt.Fprintln(w)
		metrics["table1_local_s"] = float64(r.Local.Total())
		metrics["table1_grid_s"] = float64(r.Grid.Total())
	}
	if all || exp == "table2" {
		if err := perf.RenderTable2(w, perf.Table2(p)); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if all || exp == "equations" {
		f, err := perf.FitEquations(perf.EquationCalibratedParams())
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "(equation-calibrated params: reproduces the paper's published fit)")
		if err := perf.RenderEquations(w, f); err != nil {
			return err
		}
		f2, err := perf.FitEquations(p)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "\n(table-calibrated params: the coefficients the paper's own tables imply)")
		if err := perf.RenderEquations(w, f2); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if all || exp == "figure5" {
		r := perf.Figure5(p, nil, nil)
		if err := perf.RenderFigure5(w, r); err != nil {
			return err
		}
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		csv, err := os.Create(filepath.Join(outDir, "figure5.csv"))
		if err != nil {
			return err
		}
		if err := r.WriteCSV(csv); err != nil {
			csv.Close()
			return err
		}
		csv.Close()
		svg, err := os.Create(filepath.Join(outDir, "figure5-grid.svg"))
		if err != nil {
			return err
		}
		err = aida.WriteSVGHeatmap(svg, "Figure 5 — simulated Grid time (s)",
			"dataset size (MB)", "compute nodes", r.GridSurface(), 800, 500)
		svg.Close()
		if err != nil {
			return err
		}
		svg2, err := os.Create(filepath.Join(outDir, "figure5-advantage.svg"))
		if err != nil {
			return err
		}
		err = aida.WriteSVGHeatmap(svg2, "Figure 5 — local minus Grid (s; positive = Grid wins)",
			"dataset size (MB)", "compute nodes", r.AdvantageSurface(), 800, 500)
		svg2.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %s/figure5.csv, figure5-grid.svg, figure5-advantage.svg\n\n", outDir)
	}
	if all || exp == "queue" {
		r, err := perf.QueueAblation(8, 2*time.Second)
		if err != nil {
			return err
		}
		t := &aida.Table{Title: "A1 — engine start latency on a full farm (8 nodes)",
			Columns: []string{"Queue setup", "Latency"}}
		t.AddRow("dedicated interactive (preempting)", fmt.Sprintf("%d ms", r.DedicatedMS))
		shared := fmt.Sprintf("%d ms", r.SharedMS)
		if r.SharedTimedOut {
			shared = fmt.Sprintf("> %d ms (starved behind batch backlog)", r.SharedMS)
		}
		t.AddRow("shared batch queue", shared)
		fmt.Fprintln(w, t.String())
		metrics["queue_dedicated_ms"] = float64(r.DedicatedMS)
	}
	if all || exp == "merge" {
		rows, err := perf.MergeAblation(64, 4, 8, 8)
		if err != nil {
			return err
		}
		t := &aida.Table{Title: "A2 — flat vs hierarchical merging (64 workers x 4 rounds)",
			Columns: []string{"Mode", "Root publishes", "Wall ms"}}
		for _, r := range rows {
			t.AddRow(r.Mode, fmt.Sprintf("%d", r.RootPublishes), fmt.Sprintf("%d", r.WallMS))
			metrics["merge_"+r.Mode+"_wall_ms"] = float64(r.WallMS)
		}
		fmt.Fprintln(w, t.String())
	}
	if all || exp == "streams" {
		rows := perf.StreamAblation(471, []int{1, 2, 4, 8, 16})
		t := &aida.Table{Title: "A3 — parallel GridFTP streams over a window-limited WAN (471 MB)",
			Columns: []string{"Streams", "Seconds", "Speedup"}}
		for _, r := range rows {
			t.AddRow(fmt.Sprintf("%d", r.Streams), fmt.Sprintf("%.1f", r.Seconds), fmt.Sprintf("%.2fx", r.Speedup))
		}
		fmt.Fprintln(w, t.String())
	}
	if all || exp == "poll" {
		r, err := perf.PollAblation(20)
		if err != nil {
			return err
		}
		t := &aida.Table{Title: "A4 — client poll size, 20 histograms, 1 changed",
			Columns: []string{"Strategy", "Bytes"}}
		t.AddRow("full tree", fmt.Sprintf("%d", r.FullBytes))
		t.AddRow("incremental", fmt.Sprintf("%d", r.IncrementalBytes))
		fmt.Fprintln(w, t.String())
		metrics["poll_full_bytes"] = float64(r.FullBytes)
		metrics["poll_incremental_bytes"] = float64(r.IncrementalBytes)
	}
	if all || exp == "publish" {
		rows, err := perf.PublishAblation(8, 50, 20, 1)
		if err != nil {
			return err
		}
		t := &aida.Table{Title: "A5 — snapshot publishing, 8 workers x 50 rounds, 1 of 20 histograms touched",
			Columns: []string{"Mode", "Wall ms", "Allocs/round", "Wire B/publish"}}
		for _, r := range rows {
			t.AddRow(r.Mode, fmt.Sprintf("%d", r.WallMS),
				fmt.Sprintf("%.0f", r.AllocsPerRound), fmt.Sprintf("%d", r.WireBytesPerPublish))
			metrics["publish_"+r.Mode+"_wall_ms"] = float64(r.WallMS)
			metrics["publish_"+r.Mode+"_allocs_per_round"] = r.AllocsPerRound
			metrics["publish_"+r.Mode+"_wire_bytes"] = float64(r.WireBytesPerPublish)
		}
		fmt.Fprintln(w, t.String())
	}
	if all || exp == "hierarchy" {
		rows, err := perf.HierarchyAblation(4, 8, 40, 20, 1)
		if err != nil {
			return err
		}
		t := &aida.Table{Title: "A6 — SubMerger forwarding, 4 groups x 8 workers x 40 rounds, 1 of 20 touched",
			Columns: []string{"Mode", "Upstream B/flush", "Allocs/round", "Wall ms"}}
		for _, r := range rows {
			t.AddRow(r.Mode, fmt.Sprintf("%d", r.UpstreamBytesPerFlush),
				fmt.Sprintf("%.0f", r.AllocsPerRound), fmt.Sprintf("%d", r.WallMS))
			key := "hier_" + strings.ReplaceAll(r.Mode, "-", "_")
			metrics[key+"_bytes_per_flush"] = float64(r.UpstreamBytesPerFlush)
			metrics[key+"_allocs_per_round"] = r.AllocsPerRound
			metrics[key+"_wall_ms"] = float64(r.WallMS)
		}
		fmt.Fprintln(w, t.String())
	}
	if all || exp == "pollcache" {
		rows, err := perf.PollCacheAblation(64, 20)
		if err != nil {
			return err
		}
		t := &aida.Table{Title: "A7 — poll encode cache, 64 clients x 20 histograms",
			Columns: []string{"Mode", "Allocs/poll", "us/poll", "Hits", "Misses"}}
		for _, r := range rows {
			t.AddRow(r.Mode, fmt.Sprintf("%.0f", r.AllocsPerPoll), fmt.Sprintf("%.0f", r.MicrosPerPoll),
				fmt.Sprintf("%d", r.Hits), fmt.Sprintf("%d", r.Misses))
			metrics["pollcache_"+r.Mode+"_allocs_per_poll"] = r.AllocsPerPoll
			metrics["pollcache_"+r.Mode+"_us_per_poll"] = r.MicrosPerPoll
			metrics["pollcache_"+r.Mode+"_hits"] = float64(r.Hits)
		}
		fmt.Fprintln(w, t.String())
	}
	if all || exp == "wire" {
		r, err := perf.WireCompressionAblation(20)
		if err != nil {
			return err
		}
		t := &aida.Table{Title: "A8 — snapshot frame size, 20 sparse histograms",
			Columns: []string{"Frame", "Bytes"}}
		t.AddRow("plain (v1)", fmt.Sprintf("%d", r.PlainBytes))
		t.AddRow("deflate (v2)", fmt.Sprintf("%d", r.FlateBytes))
		fmt.Fprintln(w, t.String())
		metrics["wire_plain_bytes"] = float64(r.PlainBytes)
		metrics["wire_flate_bytes"] = float64(r.FlateBytes)
	}
	if all || exp == "shard" {
		// 1 vs 4 vs 8 manager shards under concurrent sessions; -tiny
		// keeps the CI smoke (run under -race) fast.
		counts, sessions, workers, rounds, objects := []int{1, 4, 8}, 8, 4, 150, 20
		if tiny {
			counts, sessions, workers, rounds, objects = []int{1, 2}, 2, 2, 10, 4
		}
		rows, err := perf.ShardAblation(counts, sessions, workers, rounds, objects)
		if err != nil {
			return err
		}
		t := &aida.Table{Title: fmt.Sprintf("A9 — sharded merge fabric, %d concurrent sessions x %d workers x %d rounds",
			sessions, workers, rounds),
			Columns: []string{"Shards", "Publishes/s", "Polls/s", "Wall ms"}}
		for _, r := range rows {
			t.AddRow(fmt.Sprintf("%d", r.Shards), fmt.Sprintf("%.0f", r.PublishesPerSec),
				fmt.Sprintf("%.0f", r.PollsPerSec), fmt.Sprintf("%d", r.WallMS))
			metrics[fmt.Sprintf("shard_%d_publish_per_s", r.Shards)] = r.PublishesPerSec
			metrics[fmt.Sprintf("shard_%d_poll_per_s", r.Shards)] = r.PollsPerSec
			metrics[fmt.Sprintf("shard_%d_wall_ms", r.Shards)] = float64(r.WallMS)
		}
		fmt.Fprintln(w, t.String())
	}
	if all || exp == "lock" {
		// A10a: coarse vs fine-grained fabric locking under concurrent
		// sessions with dedicated pollers; -tiny keeps the CI smoke
		// (run under -race) fast. Note: on a 1-CPU host the fine rows
		// can only show contention-overhead savings, not parallel
		// scaling.
		shards, sessions, workers, pollers, rounds, objects := []int{1, 4, 8}, []int{8, 32}, 4, 4, 40, 20
		if tiny {
			shards, sessions, workers, pollers, rounds, objects = []int{1, 2}, []int{2}, 2, 2, 8, 4
		}
		rows, err := perf.LockAblation(shards, sessions, workers, pollers, rounds, objects)
		if err != nil {
			return err
		}
		t := &aida.Table{Title: fmt.Sprintf("A10a — fabric locking, %d workers + %d pollers per session", workers, pollers),
			Columns: []string{"Mode", "Shards", "Sessions", "Publishes/s", "Polls/s", "Fast-poll %", "Wall ms"}}
		for _, r := range rows {
			t.AddRow(r.Mode, fmt.Sprintf("%d", r.Shards), fmt.Sprintf("%d", r.Sessions),
				fmt.Sprintf("%.0f", r.PublishesPerSec), fmt.Sprintf("%.0f", r.PollsPerSec),
				fmt.Sprintf("%.0f", 100*r.FastPollFrac), fmt.Sprintf("%d", r.WallMS))
			key := fmt.Sprintf("lock_%s_s%d_n%d", r.Mode, r.Shards, r.Sessions)
			metrics[key+"_publish_per_s"] = r.PublishesPerSec
			metrics[key+"_poll_per_s"] = r.PollsPerSec
			metrics[key+"_fastpoll_frac"] = r.FastPollFrac
		}
		fmt.Fprintln(w, t.String())

		// A10b: pipelined vs serialized RMI calls on one connection.
		callers, calls := 8, 300
		if tiny {
			callers, calls = 4, 40
		}
		rrows, err := perf.RMIPipelineAblation(callers, calls)
		if err != nil {
			return err
		}
		t2 := &aida.Table{Title: fmt.Sprintf("A10b — RMI calls on one connection, %d concurrent callers x %d calls", callers, calls),
			Columns: []string{"Mode", "Calls/s", "Wall ms"}}
		for _, r := range rrows {
			t2.AddRow(r.Mode, fmt.Sprintf("%.0f", r.CallsPerSec), fmt.Sprintf("%d", r.WallMS))
			metrics["rmi_"+r.Mode+"_calls_per_s"] = r.CallsPerSec
		}
		fmt.Fprintln(w, t2.String())
	}
	if all || exp == "place" {
		// A11a: the RCU placement table vs the retained locked routing
		// baseline under a quiescent-poll storm; -tiny keeps the CI
		// smoke (run under -race) fast.
		shards, sessions, pollers, polls := 4, 8, 4, 2000
		if tiny {
			shards, sessions, pollers, polls = 2, 2, 2, 150
		}
		rrows, err := perf.RouteAblation(shards, sessions, pollers, polls)
		if err != nil {
			return err
		}
		t := &aida.Table{Title: fmt.Sprintf("A11a — owner resolution, %d shards, %d sessions x %d pollers x %d polls",
			shards, sessions, pollers, polls),
			Columns: []string{"Routing", "Polls/s", "Wall ms"}}
		for _, r := range rrows {
			t.AddRow(r.Mode, fmt.Sprintf("%.0f", r.PollsPerSec), fmt.Sprintf("%d", r.WallMS))
			metrics["place_route_"+r.Mode+"_poll_per_s"] = r.PollsPerSec
		}
		fmt.Fprintln(w, t.String())

		// A11b: load-weighted rebalancing under skewed per-session load.
		rbShards, hot, cold, rounds, skew := 4, 4, 8, 8, 10
		if tiny {
			rbShards, hot, cold, rounds, skew = 2, 2, 3, 4, 6
		}
		brows, err := perf.RebalanceAblation(rbShards, hot, cold, rounds, skew)
		if err != nil {
			return err
		}
		t2 := &aida.Table{Title: fmt.Sprintf("A11b — rebalancing, %d shards, %d hot (x%d load) + %d cold sessions",
			rbShards, hot, skew, cold),
			Columns: []string{"Rebalance", "Moves", "Hot-shard share", "Diverged", "Wall ms"}}
		for _, r := range brows {
			t2.AddRow(r.Mode, fmt.Sprintf("%d", r.Moves), fmt.Sprintf("%.0f%%", 100*r.HotShare),
				fmt.Sprintf("%v", r.Diverged), fmt.Sprintf("%d", r.WallMS))
			metrics["place_rebalance_"+r.Mode+"_moves"] = float64(r.Moves)
			metrics["place_rebalance_"+r.Mode+"_hot_share"] = r.HotShare
			if r.Diverged {
				return fmt.Errorf("rebalance ablation (%s) diverged from the flat reference", r.Mode)
			}
		}
		fmt.Fprintln(w, t2.String())

		// A11c: kill-a-shard fault recovery.
		rcShards, rcSessions, rcRounds := 3, 10, 3
		if tiny {
			rcShards, rcSessions, rcRounds = 2, 4, 2
		}
		rec, err := perf.RecoveryAblation(rcShards, rcSessions, rcRounds)
		if err != nil {
			return err
		}
		t3 := &aida.Table{Title: fmt.Sprintf("A11c — shard kill, %d shards x %d sessions", rcShards, rcSessions),
			Columns: []string{"Killed", "Its sessions", "Probe rounds", "Recovered", "Lost updates"}}
		t3.AddRow(rec.Killed, fmt.Sprintf("%d", rec.KilledSessions), fmt.Sprintf("%d", rec.ProbeRounds),
			fmt.Sprintf("%d/%d", rec.Recovered, rec.Sessions), fmt.Sprintf("%v", rec.Lost))
		fmt.Fprintln(w, t3.String())
		metrics["place_recover_sessions"] = float64(rec.Recovered)
		metrics["place_recover_killed_sessions"] = float64(rec.KilledSessions)
		metrics["place_recover_probe_rounds"] = float64(rec.ProbeRounds)
		if rec.Lost {
			return fmt.Errorf("recovery ablation lost updates (%d/%d sessions recovered)", rec.Recovered, rec.Sessions)
		}
	}
	if all || exp == "repl" {
		// A12: replicated shards — failover with the engines already
		// finished (nothing can re-baseline), replication on vs off.
		rpShards, rpSessions, rpRounds := 4, 16, 32
		if tiny {
			rpShards, rpSessions, rpRounds = 3, 6, 8
		}
		rrows, err := perf.ReplicationAblation(rpShards, rpSessions, rpRounds)
		if err != nil {
			return err
		}
		t := &aida.Table{Title: fmt.Sprintf("A12 — replicated shard kill after engines finished, %d shards x %d sessions x %d rounds",
			rpShards, rpSessions, rpRounds),
			Columns: []string{"Replication", "Publish/s", "Failover ms", "Promoted", "Recovered", "Lost"}}
		var on, off *perf.ReplicationAblationRow
		for i := range rrows {
			r := &rrows[i]
			t.AddRow(r.Mode, fmt.Sprintf("%.0f", r.PublishPerSec), fmt.Sprintf("%.2f", r.FailoverMS),
				fmt.Sprintf("%d", r.Promoted), fmt.Sprintf("%d/%d", r.Recovered, r.Sessions), fmt.Sprintf("%d", r.Lost))
			metrics["repl_"+r.Mode+"_publish_per_s"] = r.PublishPerSec
			metrics["repl_"+r.Mode+"_recovered"] = float64(r.Recovered)
			metrics["repl_"+r.Mode+"_lost"] = float64(r.Lost)
			if r.Mode == "repl" {
				on = r
				metrics["repl_failover_ms"] = r.FailoverMS
				metrics["repl_promoted"] = float64(r.Promoted)
			} else {
				off = r
			}
		}
		fmt.Fprintln(w, t.String())
		if on.Lost > 0 {
			return fmt.Errorf("replication ablation lost %d sessions with replication on", on.Lost)
		}
		if off.PublishPerSec > 0 {
			overhead := 1 - on.PublishPerSec/off.PublishPerSec
			metrics["repl_publish_overhead_frac"] = overhead
			fmt.Fprintf(w, "replication publish overhead: %.1f%% (async mirror stream)\n\n", 100*overhead)
		}

		// A12b: crash-restart durability — replay the fsync'd session log
		// into a cold manager and compare state byte-for-byte.
		wSessions, wRounds := 8, 32
		if tiny {
			wSessions, wRounds = 3, 8
		}
		wrow, err := perf.WALAblation(wSessions, wRounds)
		if err != nil {
			return err
		}
		t2 := &aida.Table{Title: fmt.Sprintf("A12b — session-log replay, %d sessions x %d rounds", wSessions, wRounds),
			Columns: []string{"Log KiB", "Records replayed", "Replay ms", "State intact"}}
		t2.AddRow(fmt.Sprintf("%.0f", float64(wrow.LogBytes)/1024), fmt.Sprintf("%d", wrow.Replayed),
			fmt.Sprintf("%.2f", wrow.ReplayMS), fmt.Sprintf("%v", wrow.Intact))
		fmt.Fprintln(w, t2.String())
		metrics["repl_wal_replay_ms"] = wrow.ReplayMS
		metrics["repl_wal_replayed"] = float64(wrow.Replayed)
		if !wrow.Intact {
			return fmt.Errorf("session-log replay diverged from the pre-crash state")
		}
	}
	if all || exp == "mcore" {
		// A13 — multicore raw-speed sweep: the four rebuilt hot paths
		// (bulk fills, coalesced publishes, binary envelope, pooled
		// frame decodes) against their retained baselines, per
		// GOMAXPROCS setting. Settings above runtime.NumCPU are capped:
		// an oversubscribed scheduler must not masquerade as scaling.
		procs := []int{1, 2, 4, runtime.NumCPU()}
		fills, sessions, rounds, objects, calls := 1<<20, 8, 120, 16, 2000
		if tiny {
			procs = []int{1, runtime.NumCPU()}
			// Keep 8 sessions even in tiny mode: group-commit coalescing
			// needs concurrent producers to have anything to coalesce.
			fills, sessions, rounds, objects, calls = 1<<14, 8, 12, 4, 40
		}
		rows, err := perf.MulticoreSweep(procs, fills, sessions, rounds, objects, calls)
		if err != nil {
			return err
		}
		t := &aida.Table{Title: fmt.Sprintf("A13 — multicore raw speed (host has %d CPUs), new path vs retained baseline",
			runtime.NumCPU()),
			Columns: []string{"Procs", "FillN/s", "Fill/s", "Batched ops/s", "Unbatched", "Coalesce", "v2 calls/s", "gob calls/s", "Pooled allocs", "Unpooled"}}
		for _, r := range rows {
			t.AddRow(fmt.Sprintf("%d", r.Procs),
				fmt.Sprintf("%.1fM", r.FillNPerSec/1e6), fmt.Sprintf("%.1fM", r.ScalarPerSec/1e6),
				fmt.Sprintf("%.0f", r.BatchedOpsPerSec), fmt.Sprintf("%.0f", r.UnbatchedOpsPerSec),
				fmt.Sprintf("%.1fx", r.CoalesceFactor),
				fmt.Sprintf("%.0f", r.V2CallsPerSec), fmt.Sprintf("%.0f", r.GobCallsPerSec),
				fmt.Sprintf("%.2f", r.PooledAllocsPerDecode), fmt.Sprintf("%.2f", r.UnpooledAllocsPerDecode))
			key := fmt.Sprintf("mcore_p%d", r.Procs)
			metrics[key+"_filln_per_s"] = r.FillNPerSec
			metrics[key+"_fill_per_s"] = r.ScalarPerSec
			metrics[key+"_batched_ops_per_s"] = r.BatchedOpsPerSec
			metrics[key+"_unbatched_ops_per_s"] = r.UnbatchedOpsPerSec
			metrics[key+"_coalesce_factor"] = r.CoalesceFactor
			metrics[key+"_rmi_v2_calls_per_s"] = r.V2CallsPerSec
			metrics[key+"_rmi_gob_calls_per_s"] = r.GobCallsPerSec
			metrics[key+"_pooled_allocs_per_decode"] = r.PooledAllocsPerDecode
			metrics[key+"_unpooled_allocs_per_decode"] = r.UnpooledAllocsPerDecode
		}
		fmt.Fprintln(w, t.String())
		if n := len(rows); n > 1 && rows[0].BatchedOpsPerSec > 0 {
			scale := rows[n-1].BatchedOpsPerSec / rows[0].BatchedOpsPerSec
			metrics["mcore_pubpoll_scale"] = scale
			fmt.Fprintf(w, "publish+poll scaling %d→%d procs: %.2fx\n\n", rows[0].Procs, rows[n-1].Procs, scale)
		} else if n == 1 {
			fmt.Fprintf(w, "single-CPU host: no scaling row possible (env block records num_cpu=%d)\n\n", runtime.NumCPU())
		}
	}
	if all || exp == "obs" {
		// A14 — telemetry overhead: the instrumented publish+poll fabric
		// vs the obs.Disabled ablation, interleaved reps, per-mode
		// medians. The acceptance bar is overhead within the noise of the
		// loopback round trip.
		// Rounds are sized so each measured window is hundreds of ms:
		// shorter windows swing ±15% on a shared host, which would
		// drown the few-percent effect this ablation is after.
		oSessions, oRounds, oObjects := 8, 400, 16
		if tiny {
			oSessions, oRounds, oObjects = 4, 12, 4
		}
		orow, err := perf.ObsOverheadAblation(oSessions, oRounds, oObjects)
		if err != nil {
			return err
		}
		t := &aida.Table{Title: fmt.Sprintf("A14 — telemetry overhead, %d sessions x %d rounds x %d objects (medians of %d interleaved reps)",
			oSessions, oRounds, oObjects, perf.ObsReps),
			Columns: []string{"Mode", "Ops/s"}}
		t.AddRow("instrumented", fmt.Sprintf("%.0f", orow.InstrumentedOpsPerSec))
		t.AddRow("obs.Disabled", fmt.Sprintf("%.0f", orow.DisabledOpsPerSec))
		fmt.Fprintln(w, t.String())
		fmt.Fprintf(w, "telemetry overhead: %.1f%% (negative = noise in the instrumented run's favor)\n\n", 100*orow.OverheadFrac)
		metrics["obs_instrumented_ops_per_s"] = orow.InstrumentedOpsPerSec
		metrics["obs_disabled_ops_per_s"] = orow.DisabledOpsPerSec
		metrics["obs_overhead_frac"] = orow.OverheadFrac
	}
	if all || exp == "chaos" {
		// A15 — chaos schedule over the K-replica chain: seeded multi-kill
		// (the second victim dies mid-failover) with a flaky replication
		// plane, zero-loss assertion against the flat reference, and a
		// silent-drift replica the anti-entropy loop must repair within
		// two sweeps. The seed is fixed so CI reruns the same schedule.
		cShards, cSessions, cRounds, cKills, cDepth := 5, 12, 24, 2, 2
		if tiny {
			cShards, cSessions, cRounds, cKills, cDepth = 4, 3, 6, 2, 2
		}
		const chaosSeed = 2006
		cres, err := perf.ChaosAblation(cShards, cSessions, cRounds, cKills, cDepth, chaosSeed)
		if err != nil {
			return err
		}
		t := &aida.Table{Title: fmt.Sprintf("A15 — chain-depth publish overhead, %d shards x %d sessions x %d rounds",
			cShards, cSessions, cRounds),
			Columns: []string{"Chain depth", "Publish/s", "vs K=0"}}
		base := cres.Overhead[0].PublishPerSec
		for _, row := range cres.Overhead {
			rel := "—"
			if row.Depth > 0 && base > 0 {
				rel = fmt.Sprintf("%.1f%%", 100*(1-row.PublishPerSec/base))
			}
			t.AddRow(fmt.Sprintf("K=%d", row.Depth), fmt.Sprintf("%.0f", row.PublishPerSec), rel)
			metrics[fmt.Sprintf("chaos_k%d_publish_per_s", row.Depth)] = row.PublishPerSec
		}
		fmt.Fprintln(w, t.String())
		t2 := &aida.Table{Title: fmt.Sprintf("A15 — seeded kill schedule (seed %d), K=%d chain, %d kills",
			chaosSeed, cDepth, cKills),
			Columns: []string{"Victim", "Owned sessions", "Death"}}
		for _, v := range cres.Victims {
			death := "killed outright"
			if v.MidFailover {
				death = fmt.Sprintf("armed: dies %d calls into the failover", v.Fuse)
			}
			t2.AddRow(v.Shard, fmt.Sprintf("%d", v.OwnedSessions), death)
		}
		fmt.Fprintln(w, t2.String())
		t3 := &aida.Table{Title: "A15 — survival",
			Columns: []string{"Probe rounds", "Failover ms", "Promoted", "Recovered", "Lost", "Drift repaired (sweeps)"}}
		drift := "no chain to doctor"
		if cres.DriftHop != "" {
			drift = fmt.Sprintf("%v (%d)", cres.DriftRepaired, cres.DriftRounds)
		}
		t3.AddRow(fmt.Sprintf("%d", cres.ProbeRounds), fmt.Sprintf("%.2f", cres.FailoverMS),
			fmt.Sprintf("%d", cres.Promoted), fmt.Sprintf("%d/%d", cres.Recovered, cSessions),
			fmt.Sprintf("%d", cres.Lost), drift)
		fmt.Fprintln(w, t3.String())
		metrics["chaos_probe_rounds"] = float64(cres.ProbeRounds)
		metrics["chaos_failover_ms"] = cres.FailoverMS
		metrics["chaos_promoted"] = float64(cres.Promoted)
		metrics["chaos_recovered"] = float64(cres.Recovered)
		metrics["chaos_lost"] = float64(cres.Lost)
		metrics["chaos_drift_rounds"] = float64(cres.DriftRounds)
		if cres.Lost > 0 {
			return fmt.Errorf("chaos schedule lost %d of %d sessions (%d shards killed, chain depth %d)",
				cres.Lost, cSessions, cKills, cDepth)
		}
		if cres.DriftHop != "" && !cres.DriftRepaired {
			return fmt.Errorf("anti-entropy failed to repair the injected drift at %s within %d sweeps",
				cres.DriftHop, cres.DriftRounds)
		}
	}
	if all || exp == "relay" {
		// A16 — the read fan-out tier: N downstream pollers per session
		// served through a delta-subscribing relay mirror vs polling the
		// owning shards directly. The relay must collapse the N poller
		// streams into one upstream subscription per session (≥10× fewer
		// upstream shard polls at N=64) while re-serving byte-identical
		// frames; "direct" is the DisableRelay ablation baseline.
		ryShards, rySessions, ryRounds, ryPollers := 4, 8, 16, 64
		if tiny {
			ryShards, rySessions, ryRounds, ryPollers = 3, 3, 4, 16
		}
		ryRows, err := perf.RelayAblation(ryShards, rySessions, ryRounds, ryPollers)
		if err != nil {
			return err
		}
		t := &aida.Table{Title: fmt.Sprintf("A16 — read fan-out, %d shards x %d sessions x %d rounds, N=%d pollers",
			ryShards, rySessions, ryRounds, ryPollers),
			Columns: []string{"Reads via", "Upstream polls", "Downstream polls", "Fan-out", "Serve polls/s", "Identical"}}
		var direct, relayRow *perf.RelayAblationRow
		for i := range ryRows {
			r := &ryRows[i]
			t.AddRow(r.Mode, fmt.Sprintf("%d", r.UpstreamPolls), fmt.Sprintf("%d", r.DownstreamPolls),
				fmt.Sprintf("%.1fx", r.FanOut), fmt.Sprintf("%.0f", r.PollPerSec), fmt.Sprintf("%v", r.Identical))
			metrics["relay_"+r.Mode+"_upstream_polls"] = float64(r.UpstreamPolls)
			metrics["relay_"+r.Mode+"_fan_out"] = r.FanOut
			metrics["relay_"+r.Mode+"_poll_per_s"] = r.PollPerSec
			if r.Mode == "relay" {
				relayRow = r
			} else {
				direct = r
			}
			if !r.Identical {
				return fmt.Errorf("relay ablation: %s-mode served state diverged from the reference", r.Mode)
			}
		}
		fmt.Fprintln(w, t.String())
		if relayRow.UpstreamPolls > 0 {
			reduction := float64(direct.UpstreamPolls) / float64(relayRow.UpstreamPolls)
			metrics["relay_upstream_reduction_x"] = reduction
			fmt.Fprintf(w, "relay tier: %.1fx fewer upstream shard polls for the same %d downstream reads\n\n",
				reduction, relayRow.DownstreamPolls)
			// The tentpole claim at full size; the tiny smoke keeps the
			// proportional bar so CI still proves the collapse.
			floor := 10.0
			if tiny {
				floor = float64(ryPollers) / 4
			}
			if reduction < floor {
				return fmt.Errorf("relay ablation: upstream polls reduced only %.1fx (want ≥%.0fx at N=%d pollers)",
					reduction, floor, ryPollers)
			}
		}
	}
	if jsonPath != "" {
		blob, err := json.MarshalIndent(struct {
			Env     map[string]any     `json:"env"`
			Metrics map[string]float64 `json:"metrics"`
		}{
			Env: map[string]any{
				"go_version": runtime.Version(),
				"goos":       runtime.GOOS,
				"goarch":     runtime.GOARCH,
				"num_cpu":    runtime.NumCPU(),
				"gomaxprocs": runtime.GOMAXPROCS(0),
			},
			Metrics: metrics,
		}, "", "  ")
		if err != nil {
			return err
		}
		if dir := filepath.Dir(jsonPath); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s (%d metrics)\n", jsonPath, len(metrics))
	}
	return nil
}
