// ipa-gen generates simulated Linear Collider datasets in the IPA
// container format — the stand-in for the paper's 471 MB of LC simulation
// data — and prints the catalog registration snippet.
//
// Usage:
//
//	ipa-gen -out zh.ipa -events 500000 -signal 0.15 -seed 2006
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/ipa-grid/ipa/internal/dataset"
	"github.com/ipa-grid/ipa/internal/events"
)

func main() {
	out := flag.String("out", "dataset.ipa", "output container path")
	n := flag.Int("events", 100000, "event count")
	signal := flag.Float64("signal", 0.15, "ZH signal fraction")
	seed := flag.Int64("seed", 1, "generator seed")
	higgs := flag.Float64("higgs", 120, "Higgs mass (GeV)")
	verify := flag.Bool("verify", true, "re-read and checksum after writing")
	flag.Parse()

	cfg := events.GenConfig{Seed: *seed, SignalFraction: *signal, HiggsMass: *higgs}
	bytes, err := events.GenerateFile(*out, cfg, *n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d events, %.1f MB\n", *out, *n, float64(bytes)/(1<<20))
	if *verify {
		r, f, err := dataset.Open(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := r.VerifyChecksum(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("verified: %d records, crc %08x\n", r.NumRecords(), r.CRC32())
	}
	fmt.Printf("catalog: AddDataset(dir, DatasetRef{ID, Name, SizeMB: %.1f, Records: %d, Format: %q}, attrs)\n",
		float64(bytes)/(1<<20), *n, events.EventDecoderName)
}
