// ipa-gen generates simulated Linear Collider datasets in the IPA
// container format — the stand-in for the paper's 471 MB of LC simulation
// data — and prints the catalog registration snippet.
//
// Usage:
//
//	ipa-gen -out zh.ipa -events 500000 -signal 0.15 -seed 2006
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/ipa-grid/ipa/internal/aida"
	"github.com/ipa-grid/ipa/internal/dataset"
	"github.com/ipa-grid/ipa/internal/events"
)

func main() {
	out := flag.String("out", "dataset.ipa", "output container path")
	n := flag.Int("events", 100000, "event count")
	signal := flag.Float64("signal", 0.15, "ZH signal fraction")
	seed := flag.Int64("seed", 1, "generator seed")
	higgs := flag.Float64("higgs", 120, "Higgs mass (GeV)")
	verify := flag.Bool("verify", true, "re-read and checksum after writing")
	spectrum := flag.Bool("spectrum", false, "re-read and print a particle-energy QA spectrum")
	flag.Parse()

	cfg := events.GenConfig{Seed: *seed, SignalFraction: *signal, HiggsMass: *higgs}
	bytes, err := events.GenerateFile(*out, cfg, *n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d events, %.1f MB\n", *out, *n, float64(bytes)/(1<<20))
	if *verify {
		r, f, err := dataset.Open(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := r.VerifyChecksum(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("verified: %d records, crc %08x\n", r.NumRecords(), r.CRC32())
	}
	if *spectrum {
		if err := printSpectrum(*out); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("catalog: AddDataset(dir, DatasetRef{ID, Name, SizeMB: %.1f, Records: %d, Format: %q}, attrs)\n",
		float64(bytes)/(1<<20), *n, events.EventDecoderName)
}

// printSpectrum re-reads the container and histograms every particle's
// energy — a quick sanity check that the generated physics looks right
// (and the bulk-fill showcase: energies batch per event into one FillN
// instead of a Fill per particle).
func printSpectrum(path string) error {
	r, f, err := dataset.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	h := aida.NewHistogram1D("particle-energy", "Particle energy [GeV]", 60, 0, 300)
	var ev events.Event
	var energies []float64
	for i := int64(0); i < r.NumRecords(); i++ {
		rec, err := r.Record(i)
		if err != nil {
			return err
		}
		if err := events.UnmarshalInto(rec, &ev); err != nil {
			return err
		}
		energies = energies[:0]
		for _, p := range ev.Particles {
			energies = append(energies, float64(p.E))
		}
		h.FillN(energies, nil)
	}
	fmt.Printf("spectrum: %d particles, mean E %.1f GeV, rms %.1f\n",
		h.AllEntries(), h.Mean(), h.Rms())
	ax := h.Axis()
	max := 0.0
	for i := 0; i < ax.Bins(); i++ {
		if v := h.BinHeight(i); v > max {
			max = v
		}
	}
	for i := 0; i < ax.Bins(); i += 2 {
		v := h.BinHeight(i) + h.BinHeight(i+1)
		bar := int(30 * v / (2 * max))
		fmt.Printf("%6.0f |%s\n", ax.BinCenter(i), bars(bar))
	}
	return nil
}

func bars(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}
