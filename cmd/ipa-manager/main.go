// ipa-manager runs a standalone IPA Grid site: the manager node services
// plus an in-process compute element, listening on fixed ports so
// ipa-client (or any WSRF/RMI client) can connect from other processes.
//
// Usage:
//
//	ipa-manager [-nodes 8] [-events 20000] [-insecure] [-shards N]
//	            [-rebalance 5s] [-rebalance-moves 2] [-rebalance-band 0.25]
//	            [-health 2s] [-health-fails 3] [-http 127.0.0.1:6060]
//	            [-relays N] [-relay-interval 25ms] [-gateway 127.0.0.1:7070]
//
// -http serves the operational plane on one listener: Prometheus-text
// telemetry at /metrics, the live fabric snapshot (placements, epochs,
// replicas, recent events) as JSON at /fabric/status, and net/http/pprof
// under /debug/pprof/. -pprof is a deprecated alias for -http.
//
// -relays starts a read fan-out tier on a sharded fabric (needs
// -shards > 1): client polls route to delta-subscribing relay mirrors
// while publishes stay on the owning shards. -gateway serves the
// HTTP/SSE live-view plane — Server-Sent-Events update streams at
// /events/{session}, an in-browser live view at /live/{session}, and
// SVG/text/XML renderings at /view, /tree and /xml — off one relay
// subscription per session, whatever the viewer count.
//
// On startup it prints the endpoints and, with -events > 0, publishes a
// generated LC dataset ("ds-zh") so a client can run immediately. In
// secure mode (default) it writes the CA certificate and a ready-made user
// credential to -creddir for clients to pick up.
package main

import (
	"crypto/ecdsa"
	"crypto/x509"
	"encoding/json"
	"encoding/pem"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"syscall"
	"time"

	"github.com/ipa-grid/ipa"
	"github.com/ipa-grid/ipa/internal/gsi"
	"github.com/ipa-grid/ipa/internal/obs"
	"github.com/ipa-grid/ipa/internal/relay"
)

func main() {
	nodes := flag.Int("nodes", 8, "worker node count")
	events := flag.Int("events", 20000, "events in the demo dataset (0 = none)")
	insecure := flag.Bool("insecure", false, "serve plain HTTP (no GSI)")
	credDir := flag.String("creddir", "ipa-creds", "where to write CA + user credentials")
	shards := flag.Int("shards", 1, "merge-fabric shard count (>1 = consistent-hash session sharding)")
	rebalance := flag.Duration("rebalance", 0, "shard rebalance probe interval (0 = off; needs -shards > 1)")
	rebalanceMoves := flag.Int("rebalance-moves", 2, "max session migrations per rebalance round")
	rebalanceBand := flag.Float64("rebalance-band", 0.25, "rebalance hysteresis band (fraction over the fabric-mean load)")
	health := flag.Duration("health", 0, "shard health probe interval (0 = off; needs -shards > 1)")
	healthFails := flag.Int("health-fails", 3, "consecutive failed probes before a shard is marked dead")
	replicate := flag.Bool("replicate", false, "mirror each session to a replica chain; shard death promotes the deepest caught-up replica instead of losing the session (needs -shards > 1)")
	replicas := flag.Int("replicas", 1, "replica chain depth K per session (needs -replicate; capped at shards-1)")
	antiEntropy := flag.Duration("anti-entropy", 0, "replica chain repair sweep interval: drifted or stalled copies are re-baselined (0 = off; needs -replicate)")
	wal := flag.String("wal", "", "directory for per-manager append-only session logs, replayed on restart (\"\" = no durability)")
	walSync := flag.Int("wal-sync", 64, "fsync the session log every N records (0 = every record)")
	httpAddr := flag.String("http", "", "serve /metrics, /fabric/status and /debug/pprof/ on this address (e.g. 127.0.0.1:6060; \"\" = off)")
	pprofAddr := flag.String("pprof", "", "deprecated alias for -http")
	relays := flag.Int("relays", 0, "read relay count: delta-subscribing mirrors that absorb client polls (0 = off; needs -shards > 1)")
	relayInterval := flag.Duration("relay-interval", 0, "relay subscription sync cadence (0 = 25ms default)")
	gateway := flag.String("gateway", "", "serve the HTTP/SSE live-view gateway on this address (e.g. 127.0.0.1:7070; \"\" = off)")
	flag.Parse()
	if *httpAddr == "" && *pprofAddr != "" {
		log.Printf("-pprof is deprecated; use -http")
		*httpAddr = *pprofAddr
	}

	grid, err := ipa.NewLocalGrid(ipa.GridOptions{
		Nodes: *nodes, Insecure: *insecure, Shards: *shards,
		RebalanceInterval: *rebalance, RebalanceMaxMoves: *rebalanceMoves, RebalanceBand: *rebalanceBand,
		HealthInterval: *health, HealthFails: *healthFails,
		Replicate: *replicate, ReplicaDepth: *replicas, AntiEntropyInterval: *antiEntropy,
		WALDir: *wal, WALSyncEvery: *walSync,
		Relays: *relays, RelayInterval: *relayInterval,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer grid.Close()

	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			log.Fatalf("http listen: %v", err)
		}
		go func() {
			if err := http.Serve(ln, opsMux(grid)); err != nil {
				log.Printf("http server: %v", err)
			}
		}()
		fmt.Printf("metrics:       http://%s/metrics\n", ln.Addr())
		fmt.Printf("fabric status: http://%s/fabric/status\n", ln.Addr())
		fmt.Printf("pprof:         http://%s/debug/pprof/\n", ln.Addr())
	}

	if *gateway != "" {
		gw, owned := gatewayRelay(grid, *relayInterval)
		if owned {
			defer gw.Close()
		}
		ln, err := net.Listen("tcp", *gateway)
		if err != nil {
			log.Fatalf("gateway listen: %v", err)
		}
		go func() {
			if err := http.Serve(ln, relay.NewGateway(gw)); err != nil {
				log.Printf("gateway server: %v", err)
			}
		}()
		fmt.Printf("live view:     http://%s/live/<session>\n", ln.Addr())
		fmt.Printf("SSE stream:    http://%s/events/<session>\n", ln.Addr())
	}

	if _, err := grid.AddUser("analyst", ipa.RoleAnalyst); err != nil {
		log.Fatal(err)
	}
	if !*insecure {
		if err := writeCreds(grid, *credDir); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("credentials written to %s/\n", *credDir)
	}
	if *events > 0 {
		if err := grid.PublishDataset("ds-zh", "/lc/zh", "zh-500", *events,
			ipa.GenConfig{Seed: 2006, SignalFraction: 0.2},
			map[string]string{"process": "e+e- -> ZH"}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("published dataset ds-zh (%d events)\n", *events)
	}
	fmt.Printf("WSRF endpoint: %s (secure=%v)\n", grid.Manager.Addr(), !*insecure)
	fmt.Printf("RMI endpoint:  %s\n", grid.Manager.RMIAddr())
	fmt.Printf("nodes: %d, interactive queue ready\n", *nodes)
	if *shards > 1 {
		fmt.Printf("merge fabric: %d shards (consistent-hash session routing)\n", *shards)
		if *rebalance > 0 {
			fmt.Printf("rebalancer: every %s, ≤%d moves/round, band %.0f%%\n",
				*rebalance, *rebalanceMoves, 100**rebalanceBand)
		}
		if *health > 0 {
			fmt.Printf("health prober: every %s, dead after %d failed probes\n", *health, *healthFails)
		}
		if *relays > 0 && len(grid.Relays) > 0 {
			fmt.Printf("read relays: %d delta-subscribing mirror(s) absorbing client polls (writes stay on the owning shards)\n", len(grid.Relays))
		}
		if *replicate {
			fmt.Printf("replication: each session mirrored down a chain of %d standby shard(s) (epoch-fenced failover, deepest caught-up wins)\n", *replicas)
			if *antiEntropy > 0 {
				fmt.Printf("anti-entropy: chain repair sweep every %s\n", *antiEntropy)
			}
		}
	}
	if *wal != "" {
		fmt.Printf("session log: %s/ (fsync every %d records, replayed on restart)\n", *wal, *walSync)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
}

// gatewayRelay picks the relay the SSE gateway serves from: the
// fabric's first read relay when a relay tier exists (viewers then
// share its subscriptions with polling clients), else a dedicated
// gateway-owned relay mirroring the merge service directly. owned
// reports whether the caller must Close it.
func gatewayRelay(grid *ipa.LocalGrid, interval time.Duration) (gw *relay.Relay, owned bool) {
	names := make([]string, 0, len(grid.Relays))
	for name := range grid.Relays {
		names = append(names, name)
	}
	if len(names) > 0 {
		sort.Strings(names)
		return grid.Relays[names[0]], false
	}
	rel := relay.New("gateway", grid.Merge)
	if interval <= 0 {
		interval = 25 * time.Millisecond
	}
	rel.Interval = interval
	rel.AutoSubscribe = true
	return rel, true
}

// opsMux assembles the shared operational mux — Prometheus telemetry,
// the JSON fabric snapshot, and net/http/pprof on one listener.
func opsMux(grid *ipa.LocalGrid) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.Handler())
	mux.HandleFunc("/fabric/status", func(w http.ResponseWriter, r *http.Request) {
		n := 0 // 0 selects the default event tail
		if s := r.URL.Query().Get("events"); s != "" {
			n, _ = strconv.Atoi(s)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(grid.FabricStatus(n)); err != nil {
			log.Printf("fabric status encode: %v", err)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeCreds(grid *ipa.LocalGrid, dir string) error {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return err
	}
	writePEM := func(name, blockType string, der []byte) error {
		f, err := os.OpenFile(filepath.Join(dir, name), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o600)
		if err != nil {
			return err
		}
		defer f.Close()
		return pem.Encode(f, &pem.Block{Type: blockType, Bytes: der})
	}
	if err := writePEM("ca.pem", "CERTIFICATE", grid.CA.Certificate().Raw); err != nil {
		return err
	}
	// Issue a fresh exportable credential for the default user.
	cred, err := grid.CA.IssueUser(grid.VO.Name(), "analyst-export", 12*3600e9)
	if err != nil {
		return err
	}
	grid.VO.Add(cred.DN(), nil, gsi.RoleAnalyst)
	if err := writePEM("usercert.pem", "CERTIFICATE", cred.Cert.Raw); err != nil {
		return err
	}
	key, err := marshalKey(cred.Key)
	if err != nil {
		return err
	}
	return writePEM("userkey.pem", "EC PRIVATE KEY", key)
}

func marshalKey(k *ecdsa.PrivateKey) ([]byte, error) { return x509.MarshalECPrivateKey(k) }
