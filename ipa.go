// Package ipa is the public API of the IPA framework — a Go reproduction
// of "Framework for Interactive Parallel Dataset Analysis on the Grid"
// (Alexander, Ananthan, Johnson, Serbo; ICPP Workshops 2006).
//
// The package re-exports the user-facing pieces of the internal packages:
// the LocalGrid harness (a complete single-process Grid site), the Client
// (the JAS3-analogue the scientist drives), the event generator and
// dataset tooling, and the performance experiments that regenerate the
// paper's evaluation. See README.md for a quickstart and DESIGN.md for the
// full architecture.
package ipa

import (
	"github.com/ipa-grid/ipa/internal/aida"
	"github.com/ipa-grid/ipa/internal/core"
	"github.com/ipa-grid/ipa/internal/events"
	"github.com/ipa-grid/ipa/internal/gsi"
	"github.com/ipa-grid/ipa/internal/perf"
)

// Version identifies the release.
const Version = "1.0.0"

// Re-exported types: the grid harness and client.
type (
	// LocalGrid is a complete in-process Grid site on loopback TCP.
	LocalGrid = core.LocalGrid
	// GridOptions size a LocalGrid.
	GridOptions = core.GridOptions
	// Client drives a manager node (connect, session, catalog, code,
	// controls, result polling).
	Client = core.Client
	// CatalogEntry is a catalog browse/search row.
	CatalogEntry = core.CatalogEntry
	// Update is one result-poll outcome.
	Update = core.Update
	// FabricStatus is the live merge-fabric snapshot served as JSON at
	// ipa-manager's /fabric/status endpoint.
	FabricStatus = core.FabricStatus
	// ShardStatus / SessionPlacement are FabricStatus rows.
	ShardStatus = core.ShardStatus
	// SessionPlacement is one session's placement row.
	SessionPlacement = core.SessionPlacement
	// RelayStatus is one read-relay row in a FabricStatus: the fan-out
	// the relay tier absorbs and how stale its mirrors run.
	RelayStatus = core.RelayStatus
	// GenConfig parameterizes the Linear Collider event generator.
	GenConfig = events.GenConfig
	// Role is a VO authorization role.
	Role = gsi.Role
	// Histogram1D is the primary result object.
	Histogram1D = aida.Histogram1D
	// Tree holds analysis objects by path.
	Tree = aida.Tree
	// RenderOptions tune ASCII histogram rendering.
	RenderOptions = aida.RenderOptions
)

// VO roles.
const (
	RoleAnalyst = gsi.RoleAnalyst
	RoleAdmin   = gsi.RoleAdmin
	RoleMonitor = gsi.RoleMonitor
)

// HiggsAnalysisName is the registry key of the built-in reference
// analysis ("a Java algorithm that looks for Higgs Bosons", §4).
const HiggsAnalysisName = events.HiggsAnalysisName

// EventDecoderName is the script record decoder for LC events.
const EventDecoderName = events.EventDecoderName

// NewLocalGrid stands up a complete Grid site in this process.
func NewLocalGrid(opts GridOptions) (*LocalGrid, error) { return core.NewLocalGrid(opts) }

// Connect builds a client against a remote manager address.
var Connect = core.Connect

// RenderH1D renders a histogram as ASCII art.
var RenderH1D = aida.RenderH1D

// RenderTree summarizes a result tree.
var RenderTree = aida.RenderTree

// Perf experiment entry points (see cmd/ipa-bench for the full harness).
var (
	// PaperParams are the DES constants calibrated to the paper's tables.
	PaperParams = perf.PaperParams
	// SimulateGrid runs one staged-pipeline simulation.
	SimulateGrid = perf.SimulateGrid
	// SimulateLocal runs the desktop baseline.
	SimulateLocal = perf.SimulateLocal
)
