module github.com/ipa-grid/ipa

go 1.22
